package testkit

import (
	"fmt"
	"math"
)

// The confidence-bound discipline of the property checks: every stochastic
// contract is tested as "empirical mean within z standard errors of the
// claimed expectation" with z = CheckZ. The trial counts are fixed and the
// RNG is seeded, so a check's verdict is deterministic — but the bound is
// *derived* (CLT), not tuned: if the underlying estimator were biased by
// more than the bound, the check would fail for almost every seed, and a
// passing seed certifies the bias is below the detectable floor.

// CheckZ is the number of standard errors allowed around a claimed
// expectation. 4.75 puts the per-comparison false-alarm probability near
// 1e-6; with a few hundred comparisons per sweep the harness-level false
// alarm stays below 1e-3 — and since the seeds are fixed, a re-run cannot
// flake either way.
const CheckZ = 4.75

// MeanWithin reports whether the empirical mean of n samples with the given
// sample standard deviation is within CheckZ standard errors of want.
// It returns the margin actually allowed.
func MeanWithin(mean, want, sd float64, n int) (ok bool, margin float64) {
	if n <= 1 {
		return false, 0
	}
	margin = CheckZ * sd / math.Sqrt(float64(n))
	return math.Abs(mean-want) <= margin, margin
}

// BernoulliWithin reports whether an observed frequency k/n is within CheckZ
// binomial standard errors of probability p, returning the allowed margin.
// A small continuity allowance (1/n) keeps the check meaningful at p near 0
// or 1, where the normal approximation is thin.
func BernoulliWithin(k, n int, p float64) (ok bool, margin float64) {
	if n <= 0 {
		return false, 0
	}
	freq := float64(k) / float64(n)
	margin = CheckZ*math.Sqrt(p*(1-p)/float64(n)) + 1/float64(n)
	return math.Abs(freq-p) <= margin, margin
}

// RunningMean accumulates a sample mean and variance (Welford) so checks can
// derive their own standard errors without retaining samples.
type RunningMean struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one sample in.
func (r *RunningMean) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the sample count.
func (r *RunningMean) N() int { return r.n }

// Mean returns the sample mean.
func (r *RunningMean) Mean() float64 { return r.mean }

// SD returns the sample standard deviation.
func (r *RunningMean) SD() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n-1))
}

// PropResult is one property check's verdict.
type PropResult struct {
	// Name identifies the check ("quant-ternary-unbiased", ...).
	Name string
	// OK reports whether the contract held.
	OK bool
	// Detail explains a failure (the first violated comparison) or
	// summarizes what a pass covered.
	Detail string
}

// String renders the verdict for reports.
func (p PropResult) String() string {
	status := "ok  "
	if !p.OK {
		status = "FAIL"
	}
	return fmt.Sprintf("%s %-28s %s", status, p.Name, p.Detail)
}
