// Package testkit is the statistical verification subsystem behind
// `make verify-stats` and cmd/kgeverify. It guards the contracts the
// paper's five dynamic strategies rely on, end to end:
//
//   - Golden-run convergence regression: seeded short training runs, one per
//     strategy combination, recorded as committed golden JSON (final loss,
//     MRR, the epoch-by-epoch loss curve with tolerance bands). A drift is
//     diagnosed down to the first diverging epoch and whether the exchange
//     collective differed — so a hot-path refactor that silently changes
//     training is caught before it merges.
//   - Statistical property checks: unbiasedness of the 1/2-bit quantizers
//     and of random selection under CLT-derived confidence bounds over many
//     seeded trials; relation-partition invariants checked exhaustively over
//     generated KGs; dynamic-strategy switch permanence; hardest-negative
//     ordering.
//   - The chaos soak harness: randomized-but-seeded
//     train -> crash -> shrink -> recover -> checkpoint -> serve-reload
//     loops asserting MRR within tolerance of a fault-free baseline and no
//     lost updates.
//
// Everything in this package is deterministic for a fixed seed: the checks
// either always pass or always fail for a given build, which is what makes
// them usable as a merge gate (see TESTING.md).
package testkit

import (
	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
)

// GoldenDatasetName labels the generated dataset the golden scenarios train
// on; it is recorded in the golden file so a dataset change invalidates the
// goldens loudly instead of silently shifting every curve.
const GoldenDatasetName = "testkit-golden-v1"

// GoldenDataset returns the fixed synthetic KG all golden scenarios share.
// Small enough that a full scenario sweep stays in CI budget, structured
// enough (communities, Zipf relations) that every strategy has signal to
// work with.
func GoldenDataset() *kg.Dataset {
	return kg.Generate(kg.GenConfig{
		Name:     GoldenDatasetName,
		Entities: 300, Relations: 30, Triples: 5000,
		Communities: 6,
		Seed:        42,
	})
}

// GoldenBaseConfig is the shared short-run configuration the scenarios
// mutate. MaxEpochs is low (the harness pins the early trajectory, not
// converged quality) and StopPatience is high enough that every scenario
// runs the full horizon, so curves across scenarios are comparable.
func GoldenBaseConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Dim = 8
	cfg.BaseLR = 0.02
	cfg.BatchSize = 500
	cfg.MaxEpochs = 8
	cfg.StopPatience = 20
	cfg.ValSample = 400
	cfg.TestSample = 100
	cfg.Seed = 7
	return cfg
}

// Scenario is one golden strategy combination: a name, a node count, and a
// mutation of the base config.
type Scenario struct {
	Name   string
	Nodes  int
	Mutate func(*core.Config)
}

// Scenarios returns the golden strategy matrix: the two static exchange
// baselines, each single strategy of the paper (DRS, RS, 1-bit, 2-bit, RP,
// SS), the full combination, and the partitioned sharded-table mode (alone
// and with the strategies it composes with). Order is stable; names are the
// golden-file keys.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "allreduce", Nodes: 2, Mutate: func(c *core.Config) {}},
		{Name: "allgather", Nodes: 2, Mutate: func(c *core.Config) {
			c.Comm = core.CommAllGather
		}},
		{Name: "drs", Nodes: 2, Mutate: func(c *core.Config) {
			c.Comm = core.CommDynamic
			c.ProbeEvery = 2
			c.Select = grad.SelectBernoulli
		}},
		{Name: "rs", Nodes: 2, Mutate: func(c *core.Config) {
			c.Comm = core.CommAllGather
			c.Select = grad.SelectBernoulli
		}},
		{Name: "1bit", Nodes: 2, Mutate: func(c *core.Config) {
			c.Comm = core.CommAllGather
			c.Quant = grad.OneBitMax
		}},
		{Name: "2bit", Nodes: 2, Mutate: func(c *core.Config) {
			c.Comm = core.CommAllGather
			c.Quant = grad.TwoBitTernary
		}},
		{Name: "rp", Nodes: 2, Mutate: func(c *core.Config) {
			c.RelationPartition = true
		}},
		{Name: "ss", Nodes: 2, Mutate: func(c *core.Config) {
			c.NegSamples = 4
			c.NegSelect = true
		}},
		{Name: "combined", Nodes: 2, Mutate: func(c *core.Config) {
			c.Comm = core.CommDynamic
			c.ProbeEvery = 2
			c.Select = grad.SelectBernoulli
			c.Quant = grad.OneBitMax
			c.RelationPartition = true
			c.NegSamples = 4
			c.NegSelect = true
		}},
		{Name: "part", Nodes: 3, Mutate: func(c *core.Config) {
			c.Partitioned = true
		}},
		{Name: "part-rs-ss", Nodes: 3, Mutate: func(c *core.Config) {
			c.Partitioned = true
			c.PartitionBy = "hash"
			c.Select = grad.SelectBernoulli
			c.NegSamples = 4
			c.NegSelect = true
		}},
		// Adaptive compression controller (DESIGN.md §13): default
		// hysteresis walks the ladder fp32 -> 2bit -> 1bit inside the
		// 8-epoch horizon, and the golden pins the per-epoch rung column at
		// zero tolerance, so a threshold or estimator change cannot move
		// the trajectory silently.
		{Name: "dyncomp", Nodes: 3, Mutate: func(c *core.Config) {
			c.Comm = core.CommDynamicCompress
		}},
	}
}

// RunScenario trains the scenario on the golden dataset and returns the
// result. d may be shared across calls (Train never mutates the dataset).
func RunScenario(sc Scenario, d *kg.Dataset) (*core.Result, error) {
	cfg := GoldenBaseConfig()
	sc.Mutate(&cfg)
	return core.Train(cfg, d, sc.Nodes)
}
