package testkit

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestMeanWithin(t *testing.T) {
	t.Parallel()
	if ok, _ := MeanWithin(0.5, 0.5, 1.0, 100); !ok {
		t.Error("exact mean rejected")
	}
	// Margin at n=100, sd=1 is 0.475; a gap of 1.0 must fail.
	if ok, _ := MeanWithin(1.5, 0.5, 1.0, 100); ok {
		t.Error("mean 1.0 outside the band accepted")
	}
	if ok, _ := MeanWithin(0.5, 0.5, 1.0, 1); ok {
		t.Error("n=1 must be rejected: no standard error exists")
	}
	_, margin := MeanWithin(0, 0, 2.0, 400)
	if want := CheckZ * 2.0 / 20.0; math.Abs(margin-want) > 1e-12 {
		t.Errorf("margin = %g, want %g", margin, want)
	}
}

func TestBernoulliWithin(t *testing.T) {
	t.Parallel()
	if ok, _ := BernoulliWithin(500, 1000, 0.5); !ok {
		t.Error("exact frequency rejected")
	}
	if ok, _ := BernoulliWithin(700, 1000, 0.5); ok {
		t.Error("frequency 0.2 off accepted")
	}
	// Degenerate p: the 1/n continuity allowance must admit k=n at p=1.
	if ok, _ := BernoulliWithin(1000, 1000, 1.0); !ok {
		t.Error("k=n at p=1 rejected")
	}
	if ok, _ := BernoulliWithin(990, 1000, 1.0); ok {
		t.Error("misses at p=1 accepted")
	}
	if ok, _ := BernoulliWithin(0, 0, 0.5); ok {
		t.Error("n=0 accepted")
	}
}

func TestRunningMean(t *testing.T) {
	t.Parallel()
	var r RunningMean
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d, want 8", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", r.Mean())
	}
	// Sample SD of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(r.SD()-want) > 1e-12 {
		t.Errorf("sd = %g, want %g", r.SD(), want)
	}
}

// golden returns a small reference run for compare tests.
func goldenFixture() GoldenRun {
	return GoldenRun{
		Name: "fix", Strategy: "allreduce", Nodes: 2, Seed: 7,
		Epochs: 3, FinalLoss: 0.50, MRR: 0.15, TCA: 60, CommBytes: 1000,
		Curve: []GoldenEpoch{
			{Epoch: 1, TrainLoss: 0.70, ValAccuracy: 55, Mode: "allreduce"},
			{Epoch: 2, TrainLoss: 0.60, ValAccuracy: 58, Mode: "allreduce"},
			{Epoch: 3, TrainLoss: 0.50, ValAccuracy: 60, Mode: "allreduce"},
		},
	}
}

func TestCompareRunIdentical(t *testing.T) {
	t.Parallel()
	if drifts := CompareRun(goldenFixture(), goldenFixture(), DefaultTolerance()); len(drifts) != 0 {
		t.Fatalf("identical runs drifted: %v", drifts)
	}
}

func TestCompareRunFirstDivergingEpoch(t *testing.T) {
	t.Parallel()
	got := goldenFixture()
	// Perturb epochs 2 and 3; only epoch 2 must be reported.
	got.Curve[1].TrainLoss += 0.10
	got.Curve[2].TrainLoss += 0.10
	got.FinalLoss += 0.10
	drifts := CompareRun(got, goldenFixture(), DefaultTolerance())
	var curveDrift *Drift
	for i := range drifts {
		if drifts[i].Field == "train_loss" && drifts[i].Epoch > 0 {
			if curveDrift != nil {
				t.Fatalf("multiple curve drifts reported for one field: %v", drifts)
			}
			curveDrift = &drifts[i]
		}
	}
	if curveDrift == nil {
		t.Fatalf("no curve drift reported: %v", drifts)
	}
	if curveDrift.Epoch != 2 {
		t.Errorf("first diverging epoch = %d, want 2", curveDrift.Epoch)
	}
}

func TestCompareRunModeDrift(t *testing.T) {
	t.Parallel()
	got := goldenFixture()
	got.Curve[2].Mode = "allgather"
	drifts := CompareRun(got, goldenFixture(), DefaultTolerance())
	if len(drifts) != 1 || drifts[0].Field != "mode" || drifts[0].Epoch != 3 {
		t.Fatalf("want a single mode drift at epoch 3, got %v", drifts)
	}
	if !strings.Contains(drifts[0].String(), "allgather") {
		t.Errorf("drift detail should name the differing collective: %s", drifts[0])
	}
}

func TestCompareRunCommBytes(t *testing.T) {
	t.Parallel()
	got := goldenFixture()
	got.CommBytes = 1020 // 2% off, band is 1%
	drifts := CompareRun(got, goldenFixture(), DefaultTolerance())
	if len(drifts) != 1 || drifts[0].Field != "comm_bytes" {
		t.Fatalf("want a single comm_bytes drift, got %v", drifts)
	}
}

func TestGoldenSaveLoadRoundTrip(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "sub", "goldens.json")
	gf := &GoldenFile{Schema: GoldenSchema, Dataset: GoldenDatasetName,
		Runs: []GoldenRun{goldenFixture()}}
	if err := SaveGoldens(path, gf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadGoldens(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != 1 || back.Runs[0].Name != "fix" {
		t.Fatalf("round trip lost runs: %+v", back)
	}
	if back.Run("fix") == nil || back.Run("nope") != nil {
		t.Error("Run lookup broken")
	}
}

func TestLoadGoldensRejectsWrongSchema(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "goldens.json")
	if err := SaveGoldens(path, &GoldenFile{Schema: "other/v9", Dataset: GoldenDatasetName}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGoldens(path); err == nil {
		t.Error("wrong schema accepted")
	}
	if err := SaveGoldens(path, &GoldenFile{Schema: GoldenSchema, Dataset: "other-data"}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGoldens(path); err == nil {
		t.Error("wrong dataset accepted")
	}
}

// TestGoldenRegression is the committed-reference gate: every scenario
// re-run must land inside the tolerance bands of testdata/goldens.json.
// This is the same sweep `make verify-stats` runs via kgeverify.
func TestGoldenRegression(t *testing.T) {
	gf, err := LoadGoldens(filepath.Join("testdata", "goldens.json"))
	if err != nil {
		t.Fatal(err)
	}
	drifts := VerifyGoldens(gf, DefaultTolerance(), t.Logf)
	for _, d := range drifts {
		t.Errorf("drift: %s", d)
	}
}

// TestPropertyChecks runs the full statistical sweep at the default seed.
func TestPropertyChecks(t *testing.T) {
	for _, r := range AllPropertyChecks(1) {
		if !r.OK {
			t.Errorf("property failed: %s", r)
		} else {
			t.Log(r.String())
		}
	}
}

// TestSoakSmoke runs two chaos iterations; the full five-iteration soak is
// `make soak` / the nightly CI job.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke skipped in -short mode")
	}
	rep, err := Soak(SoakConfig{Seed: 1, Iters: 2, Dir: t.TempDir(), Report: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsInjected == 0 || rep.Recoveries == 0 {
		t.Fatalf("soak injected %d faults, %d recoveries; want both > 0",
			rep.FaultsInjected, rep.Recoveries)
	}
}
