package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"kgedist/internal/core"
	"kgedist/internal/kg"
)

func sampleResult() *core.Result {
	return &core.Result{
		Strategy:   "DRS+1-bit+RP+SS",
		Nodes:      8,
		Epochs:     2,
		TotalHours: 0.5,
		TCA:        88.4,
		MRR:        0.21,
		CommBytes:  12345,
		PerEpoch: []core.EpochStats{
			{Epoch: 1, Seconds: 3.5, ValAccuracy: 60, Mode: "allreduce", LR: 0.01},
			{Epoch: 2, Seconds: 3.1, ValAccuracy: 72, Mode: "allgather", LR: 0.01},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var sb strings.Builder
	meta := Meta{Dataset: "fb15k-mini", Strategy: "DRS+1-bit+RP+SS", Nodes: 8, Seed: 7}
	if err := WriteRun(&sb, meta, sampleResult()); err != nil {
		t.Fatal(err)
	}
	run, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if run.Meta != meta {
		t.Fatalf("meta %+v", run.Meta)
	}
	if len(run.Epochs) != 2 {
		t.Fatalf("epochs %d", len(run.Epochs))
	}
	if run.Epochs[1].Mode != "allgather" || run.Epochs[1].ValAccuracy != 72 {
		t.Fatalf("epoch 2 %+v", run.Epochs[1])
	}
	if run.Summary == nil || run.Summary.TCA != 88.4 || run.Summary.CommBytes != 12345 {
		t.Fatalf("summary %+v", run.Summary)
	}
	// Per-epoch series live in the epoch lines, not duplicated in summary.
	if run.Summary.PerEpoch != nil {
		t.Fatal("summary carries PerEpoch")
	}
}

func TestWriterOrdering(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	if err := w.WriteMeta(Meta{Dataset: "d"}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEpoch(core.EpochStats{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	run, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if run.Summary != nil {
		t.Fatal("phantom summary")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"garbage":      "not-json\n",
		"unknown type": `{"type":"wat"}` + "\n",
		"no meta":      `{"type":"epoch","epoch":{"Epoch":1}}` + "\n",
		"bare meta":    `{"type":"meta"}` + "\n",
		"bare epoch":   `{"type":"meta","meta":{}}` + "\n" + `{"type":"epoch"}` + "\n",
		"bare summary": `{"type":"meta","meta":{}}` + "\n" + `{"type":"summary"}` + "\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	in := `{"type":"meta","meta":{"dataset":"d"}}` + "\n\n" +
		`{"type":"epoch","epoch":{"Epoch":1}}` + "\n"
	run, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if run.Meta.Dataset != "d" || len(run.Epochs) != 1 {
		t.Fatalf("parsed %+v", run)
	}
}

func TestTraceFromRealTraining(t *testing.T) {
	// End to end: train briefly, trace, reload, check consistency.
	d := traceDataset()
	cfg := core.DefaultConfig()
	cfg.Dim = 8
	cfg.BatchSize = 400
	cfg.MaxEpochs = 3
	cfg.StopPatience = 3
	cfg.TestSample = 20
	cfg.ValSample = 100
	res, err := core.Train(cfg, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	meta := Meta{Dataset: d.Name, Strategy: res.Strategy, Nodes: res.Nodes, Seed: cfg.Seed}
	if err := WriteRun(&sb, meta, res); err != nil {
		t.Fatal(err)
	}
	run, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Epochs) != res.Epochs {
		t.Fatalf("trace epochs %d != result %d", len(run.Epochs), res.Epochs)
	}
	if run.Summary.MRR != res.MRR {
		t.Fatalf("summary MRR %v != %v", run.Summary.MRR, res.MRR)
	}
}

func traceDataset() *kg.Dataset {
	return kg.Generate(kg.GenConfig{
		Name: "trace-test", Entities: 200, Relations: 20, Triples: 2500, Seed: 3,
	})
}

// Property: arbitrary epoch stats survive the JSONL round trip.
func TestQuickEpochRoundTrip(t *testing.T) {
	f := func(epoch uint8, secs, val float64, bytes int64, mode bool) bool {
		if secs != secs || val != val || secs < 0 { // NaN/negatives excluded
			return true
		}
		m := "allreduce"
		if mode {
			m = "allgather"
		}
		in := core.EpochStats{
			Epoch: int(epoch), Seconds: secs, ValAccuracy: val,
			CommBytes: bytes, Mode: m,
		}
		var sb strings.Builder
		w := NewWriter(&sb)
		if w.WriteMeta(Meta{Dataset: "d"}) != nil || w.WriteEpoch(in) != nil || w.Flush() != nil {
			return false
		}
		run, err := Read(strings.NewReader(sb.String()))
		if err != nil || len(run.Epochs) != 1 {
			return false
		}
		got := run.Epochs[0]
		return got.Epoch == in.Epoch && got.Seconds == in.Seconds &&
			got.ValAccuracy == in.ValAccuracy && got.CommBytes == in.CommBytes &&
			got.Mode == in.Mode
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
