// Package trace records training runs as JSON Lines: one header line with
// the run metadata, one line per epoch, and one summary line. Traces feed
// offline analysis (plotting epoch-time or convergence curves) without
// rerunning experiments, and round-trip losslessly through Read.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"kgedist/internal/core"
)

// Meta describes a run in the trace header.
type Meta struct {
	// Dataset is the dataset name.
	Dataset string `json:"dataset"`
	// Strategy is the paper-style strategy label.
	Strategy string `json:"strategy"`
	// Nodes is the simulated cluster size.
	Nodes int `json:"nodes"`
	// Seed reproduces the run.
	Seed uint64 `json:"seed"`
}

// line is the envelope for one JSONL record.
type line struct {
	Type    string           `json:"type"` // "meta", "epoch", "summary"
	Meta    *Meta            `json:"meta,omitempty"`
	Epoch   *core.EpochStats `json:"epoch,omitempty"`
	Summary *core.Result     `json:"summary,omitempty"`
}

// Writer streams a run to an io.Writer. Records must be written in order:
// one Meta, any number of epochs, one Summary.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (t *Writer) writeLine(l line) error {
	if t.err != nil {
		return t.err
	}
	b, err := json.Marshal(l)
	if err == nil {
		_, err = t.w.Write(append(b, '\n'))
	}
	if err != nil {
		t.err = err
	}
	return t.err
}

// WriteMeta records the run header.
func (t *Writer) WriteMeta(m Meta) error { return t.writeLine(line{Type: "meta", Meta: &m}) }

// WriteEpoch records one epoch.
func (t *Writer) WriteEpoch(e core.EpochStats) error {
	return t.writeLine(line{Type: "epoch", Epoch: &e})
}

// WriteSummary records the final result (per-epoch series are stripped —
// the epoch lines carry them).
func (t *Writer) WriteSummary(r *core.Result) error {
	slim := *r
	slim.PerEpoch = nil
	return t.writeLine(line{Type: "summary", Summary: &slim})
}

// Flush commits buffered lines.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// WriteRun records a complete result in one call.
func WriteRun(w io.Writer, meta Meta, r *core.Result) error {
	tw := NewWriter(w)
	if err := tw.WriteMeta(meta); err != nil {
		return err
	}
	for _, e := range r.PerEpoch {
		if err := tw.WriteEpoch(e); err != nil {
			return err
		}
	}
	if err := tw.WriteSummary(r); err != nil {
		return err
	}
	return tw.Flush()
}

// Run is a parsed trace.
type Run struct {
	Meta    Meta
	Epochs  []core.EpochStats
	Summary *core.Result
}

// Read parses a JSONL trace produced by Writer.
func Read(r io.Reader) (*Run, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	run := &Run{}
	sawMeta := false
	n := 0
	for sc.Scan() {
		n++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", n, err)
		}
		switch l.Type {
		case "meta":
			if l.Meta == nil {
				return nil, fmt.Errorf("trace: line %d: meta record without payload", n)
			}
			run.Meta = *l.Meta
			sawMeta = true
		case "epoch":
			if l.Epoch == nil {
				return nil, fmt.Errorf("trace: line %d: epoch record without payload", n)
			}
			run.Epochs = append(run.Epochs, *l.Epoch)
		case "summary":
			if l.Summary == nil {
				return nil, fmt.Errorf("trace: line %d: summary record without payload", n)
			}
			run.Summary = l.Summary
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record type %q", n, l.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if !sawMeta {
		return nil, fmt.Errorf("trace: missing meta record")
	}
	return run, nil
}
