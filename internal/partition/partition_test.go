package partition

import (
	"testing"

	"kgedist/internal/kg"
)

func testKG(t *testing.T, seed uint64) *kg.Dataset {
	t.Helper()
	d := kg.Generate(kg.GenConfig{
		Name:     "part-test",
		Entities: 400, Relations: 40, Triples: 6000,
		Communities: 8,
		Seed:        seed,
	})
	if err := d.Validate(); err != nil {
		t.Fatalf("generated dataset invalid: %v", err)
	}
	return d
}

func TestBuildValidatesOptions(t *testing.T) {
	d := testKG(t, 1)
	if _, err := Build(d, Options{Ranks: 0}); err == nil {
		t.Fatal("Ranks=0 accepted")
	}
	if _, err := Build(d, Options{Ranks: 2, Algo: "metis"}); err == nil {
		t.Fatal("unknown algo accepted")
	}
	if _, err := Build(d, Options{Ranks: 2, Slack: -1}); err == nil {
		t.Fatal("negative slack accepted")
	}
}

// Every row owned exactly once (the owner arrays guarantee "exactly one" by
// construction; here we pin in-range plus shard conservation: no training
// triple lost or duplicated).
func TestPlanConservation(t *testing.T) {
	d := testKG(t, 2)
	for _, algo := range []string{"mincut", "hash"} {
		for _, p := range []int{1, 2, 3, 4, 7, 8} {
			pl, err := Build(d, Options{Ranks: p, Algo: algo, Seed: 5})
			if err != nil {
				t.Fatalf("%s/p=%d: %v", algo, p, err)
			}
			if err := pl.Validate(); err != nil {
				t.Fatalf("%s/p=%d: %v", algo, p, err)
			}
			seen := map[kg.Triple]int{}
			total := 0
			for _, shard := range pl.Shards {
				total += len(shard)
				for _, tr := range shard {
					seen[tr]++
				}
			}
			if total != len(d.Train) {
				t.Fatalf("%s/p=%d: shards hold %d triples, train has %d", algo, p, total, len(d.Train))
			}
			for tr, n := range seen {
				if n != 1 {
					t.Fatalf("%s/p=%d: triple %+v placed %d times", algo, p, tr, n)
				}
			}
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	d := testKG(t, 3)
	for _, algo := range []string{"mincut", "hash"} {
		a, err := Build(d, Options{Ranks: 4, Algo: algo, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(d, Options{Ranks: 4, Algo: algo, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.EntityOwner {
			if a.EntityOwner[i] != b.EntityOwner[i] {
				t.Fatalf("%s: entity %d owner differs across identical builds", algo, i)
			}
		}
		for i := range a.RelationOwner {
			if a.RelationOwner[i] != b.RelationOwner[i] {
				t.Fatalf("%s: relation %d owner differs across identical builds", algo, i)
			}
		}
		for r := range a.Shards {
			if len(a.Shards[r]) != len(b.Shards[r]) {
				t.Fatalf("%s: shard %d size differs across identical builds", algo, r)
			}
			for i := range a.Shards[r] {
				if a.Shards[r][i] != b.Shards[r][i] {
					t.Fatalf("%s: shard %d triple %d differs across identical builds", algo, r, i)
				}
			}
		}
	}
}

func TestBalanceBound(t *testing.T) {
	d := testKG(t, 4)
	slack := 0.1
	for _, algo := range []string{"mincut", "hash"} {
		for _, p := range []int{2, 3, 5, 8} {
			pl, err := Build(d, Options{Ranks: p, Algo: algo, Seed: 1, Slack: slack})
			if err != nil {
				t.Fatal(err)
			}
			q := pl.Quality()
			if algo == "mincut" {
				// The mincut passes enforce the cap directly.
				if bound := BalanceBound(d.NumEntities, p, slack); q.MaxEntityShard > bound {
					t.Errorf("mincut p=%d: max entity shard %d exceeds bound %d", p, q.MaxEntityShard, bound)
				}
			}
			// The memory-scaling claim: every shard strictly smaller than the
			// full table (p >= 2).
			if q.MaxEntityShard >= d.NumEntities {
				t.Errorf("%s p=%d: a rank owns the full entity table (%d rows)", algo, p, q.MaxEntityShard)
			}
			// Triple shards are cap-enforced for both algorithms.
			if bound := BalanceBound(len(d.Train), p, slack); int(q.TripleBalance*float64(len(d.Train))/float64(p))-1 > bound {
				t.Errorf("%s p=%d: triple balance %.3f implies shard above bound", algo, p, q.TripleBalance)
			}
		}
	}
}

// The point of the greedy min-cut: strictly better locality than the
// hash baseline on community-structured graphs.
func TestMincutBeatsHash(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		d := testKG(t, seed)
		for _, p := range []int{2, 4, 8} {
			mc, err := Build(d, Options{Ranks: p, Algo: "mincut", Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			h, err := Build(d, Options{Ranks: p, Algo: "hash", Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			qm, qh := mc.Quality(), h.Quality()
			if qm.CutRatio > qh.CutRatio {
				t.Errorf("seed=%d p=%d: mincut cut ratio %.3f worse than hash %.3f",
					seed, p, qm.CutRatio, qh.CutRatio)
			}
			if qm.RemoteRowFraction > qh.RemoteRowFraction {
				t.Errorf("seed=%d p=%d: mincut remote-row fraction %.3f worse than hash %.3f",
					seed, p, qm.RemoteRowFraction, qh.RemoteRowFraction)
			}
		}
	}
}

func TestUnifiedIDSpace(t *testing.T) {
	d := testKG(t, 5)
	pl, err := Build(d, Options{Ranks: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Rows() != d.NumEntities+d.NumRelations {
		t.Fatalf("Rows() = %d, want %d", pl.Rows(), d.NumEntities+d.NumRelations)
	}
	if uid := pl.RelationUID(3); !pl.IsRelationUID(uid) || int(uid) != d.NumEntities+3 {
		t.Fatalf("RelationUID(3) = %d", uid)
	}
	if pl.IsRelationUID(pl.EntityUID(int32(d.NumEntities - 1))) {
		t.Fatal("last entity misclassified as relation")
	}
	// Owner agreement between table view and unified view.
	for e := int32(0); int(e) < d.NumEntities; e += 17 {
		if pl.Owner(e) != int(pl.EntityOwner[e]) {
			t.Fatalf("entity %d: Owner() disagrees with EntityOwner", e)
		}
	}
	for r := int32(0); int(r) < d.NumRelations; r += 3 {
		if pl.Owner(pl.RelationUID(r)) != int(pl.RelationOwner[r]) {
			t.Fatalf("relation %d: Owner() disagrees with RelationOwner", r)
		}
	}
	// OwnedUIDs covers the unified space exactly once across ranks.
	covered := make([]int, pl.Rows())
	for rank := 0; rank < pl.Ranks; rank++ {
		prev := int32(-1)
		for _, uid := range pl.OwnedUIDs(rank) {
			if uid <= prev {
				t.Fatalf("rank %d: OwnedUIDs not ascending", rank)
			}
			prev = uid
			covered[uid]++
		}
	}
	for uid, n := range covered {
		if n != 1 {
			t.Fatalf("unified row %d owned %d times", uid, n)
		}
	}
}

func TestPreferredRankMajority(t *testing.T) {
	pl := &Plan{
		Ranks: 3, NumEntities: 4, NumRelations: 2,
		EntityOwner:   []int32{0, 1, 2, 1},
		RelationOwner: []int32{2, 1},
	}
	cases := []struct {
		t    kg.Triple
		want int
	}{
		{kg.Triple{H: 0, R: 1, T: 3}, 1},  // r and t agree on 1
		{kg.Triple{H: 2, R: 0, T: 0}, 2},  // h and r agree on 2
		{kg.Triple{H: 1, R: 1, T: 1}, 1},  // unanimous
		{kg.Triple{H: 0, R: 1, T: 2}, 0},  // three-way tie: lowest rank
	}
	for _, c := range cases {
		if got := pl.PreferredRank(c.t); got != c.want {
			t.Errorf("PreferredRank(%+v) = %d, want %d", c.t, got, c.want)
		}
	}
	if n := pl.RemoteRows(kg.Triple{H: 0, R: 1, T: 2}, 1); n != 2 {
		t.Errorf("RemoteRows = %d, want 2", n)
	}
}

func TestIDWireRoundTrip(t *testing.T) {
	cases := [][]int32{nil, {0}, {1, 5, 9, 1 << 20}, make([]int32, 1000)}
	for i := range cases[3] {
		cases[3][i] = int32(i * 3)
	}
	var scratch []int32
	for _, ids := range cases {
		payload := EncodeIDs(ids)
		var err error
		scratch, err = DecodeIDs(scratch, payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(scratch) != len(ids) {
			t.Fatalf("round trip lost ids: %d -> %d", len(ids), len(scratch))
		}
		for i := range ids {
			if scratch[i] != ids[i] {
				t.Fatalf("id %d mangled: %d -> %d", i, ids[i], scratch[i])
			}
		}
	}
}

func TestIDWireRejectsCorrupt(t *testing.T) {
	good := EncodeIDs([]int32{1, 2, 3})
	bad := [][]byte{
		nil,
		good[:4],
		append(append([]byte(nil), good...), 0),
		func() []byte { b := append([]byte(nil), good...); b[0] ^= 0xff; return b }(),
	}
	for i, p := range bad {
		if _, err := DecodeIDs(nil, p); err == nil {
			t.Errorf("corrupt payload %d accepted", i)
		}
	}
}

func TestSingleRankPlanIsTrivial(t *testing.T) {
	d := testKG(t, 6)
	for _, algo := range []string{"mincut", "hash"} {
		pl, err := Build(d, Options{Ranks: 1, Algo: algo, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		q := pl.Quality()
		if q.CutRatio != 0 || q.RemoteRowFraction != 0 {
			t.Fatalf("%s: single-rank plan has remote rows (cut=%.3f)", algo, q.CutRatio)
		}
		if len(pl.Shards[0]) != len(d.Train) {
			t.Fatalf("%s: single shard holds %d of %d triples", algo, len(pl.Shards[0]), len(d.Train))
		}
	}
}
