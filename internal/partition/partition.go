// Package partition implements joint entity+relation sharding for graphs
// whose embedding tables do not fit one node: every entity row and every
// relation row is assigned to exactly one owner rank, and training triples
// are placed on the rank that owns most of their rows. Two partitioners are
// provided, both deterministic functions of (dataset, ranks, seed):
//
//   - "mincut": a relation-led greedy min-cut over the triple hypergraph.
//     Relations are placed first (heaviest first, each on the rank whose
//     already-placed triples share the most entity endpoints), entities
//     follow the rank holding most of their endpoint mass, and triples land
//     on the rank owning the majority of their three rows — every pass
//     under row-count and triple-mass balance caps. This is the
//     DGL-KE/METIS idea (keep most triples rank-local) as dependency-free
//     greedy passes, relation-led because a relation's triples all connect
//     the same entity neighbourhoods.
//   - "hash": seeded multiplicative hashing of row ids onto ranks — the
//     locality-blind baseline the min-cut quality is measured against.
//     Triple placement uses the same majority rule, so the two algorithms
//     differ only in row ownership.
//
// A Plan is pure data: every rank of a distributed job rebuilds the
// identical Plan from the shared (dataset, Options) rather than exchanging
// it, the same replicate-the-pure-function scheme the trainer already uses
// for data partitioning. Quality reports the cut ratio, shard balance and
// remote-row fraction that the training ledger and /metrics expose.
package partition

import (
	"fmt"
	"sort"

	"kgedist/internal/kg"
)

// Options selects and seeds a partitioner.
type Options struct {
	// Ranks is the number of shards (the world size P).
	Ranks int
	// Algo is "mincut" (default) or "hash".
	Algo string
	// Seed drives tie-breaking ("mincut") and the id hash ("hash"). Plans
	// with equal inputs are identical; different seeds yield different,
	// equally valid plans.
	Seed uint64
	// Slack is the allowed per-shard overshoot above the perfect balance
	// total/P, as a fraction (0.1 = 10%). Zero means DefaultSlack.
	Slack float64
}

// DefaultSlack is the balance slack applied when Options.Slack is zero.
const DefaultSlack = 0.1

func (o Options) withDefaults() Options {
	if o.Algo == "" {
		o.Algo = "mincut"
	}
	if o.Slack == 0 {
		o.Slack = DefaultSlack
	}
	return o
}

// Validate reports option errors.
func (o Options) Validate() error {
	if o.Ranks < 1 {
		return fmt.Errorf("partition: Ranks must be >= 1, got %d", o.Ranks)
	}
	switch o.Algo {
	case "", "mincut", "hash":
	default:
		return fmt.Errorf("partition: unknown algorithm %q (want mincut or hash)", o.Algo)
	}
	if o.Slack < 0 {
		return fmt.Errorf("partition: Slack must be >= 0, got %v", o.Slack)
	}
	return nil
}

// Plan is the complete ownership assignment for one (dataset, options)
// pair: every entity and relation row has exactly one owner rank, and the
// training triples are sharded. Rows of both tables share one unified id
// space (entities first, then relations offset by NumEntities) so the row
// exchange can move them through a single collective.
type Plan struct {
	// Ranks is the shard count the plan was built for.
	Ranks int
	// NumEntities and NumRelations fix the id spaces.
	NumEntities  int
	NumRelations int
	// Algo and Seed record how the plan was built.
	Algo string
	Seed uint64

	// EntityOwner[e] is the rank owning entity row e.
	EntityOwner []int32
	// RelationOwner[r] is the rank owning relation row r.
	RelationOwner []int32
	// Shards[rank] holds the training triples placed on rank.
	Shards [][]kg.Triple
}

// UID maps a (isRelation, id) row to the unified id space: entity e is e,
// relation r is NumEntities + r.
func (p *Plan) UID(isRelation bool, id int32) int32 {
	if isRelation {
		return int32(p.NumEntities) + id
	}
	return id
}

// EntityUID returns the unified id of entity e (the identity, named for
// symmetry with RelationUID).
func (p *Plan) EntityUID(e int32) int32 { return e }

// RelationUID returns the unified id of relation r.
func (p *Plan) RelationUID(r int32) int32 { return int32(p.NumEntities) + r }

// IsRelationUID reports whether a unified id addresses the relation table.
func (p *Plan) IsRelationUID(uid int32) bool { return int(uid) >= p.NumEntities }

// Owner returns the owner rank of a unified row id.
func (p *Plan) Owner(uid int32) int {
	if int(uid) >= p.NumEntities {
		return int(p.RelationOwner[int(uid)-p.NumEntities])
	}
	return int(p.EntityOwner[uid])
}

// Rows returns the unified row count (entities + relations).
func (p *Plan) Rows() int { return p.NumEntities + p.NumRelations }

// OwnedUIDs returns the ascending unified ids owned by rank: entity rows
// first, then relation rows. The slice is freshly allocated.
func (p *Plan) OwnedUIDs(rank int) []int32 {
	out := make([]int32, 0, p.ownedCount(rank))
	for e, o := range p.EntityOwner {
		if int(o) == rank {
			out = append(out, int32(e))
		}
	}
	for r, o := range p.RelationOwner {
		if int(o) == rank {
			out = append(out, int32(p.NumEntities+r))
		}
	}
	return out
}

func (p *Plan) ownedCount(rank int) int {
	n := 0
	for _, o := range p.EntityOwner {
		if int(o) == rank {
			n++
		}
	}
	for _, o := range p.RelationOwner {
		if int(o) == rank {
			n++
		}
	}
	return n
}

// OwnedEntities returns how many entity rows rank owns.
func (p *Plan) OwnedEntities(rank int) int {
	n := 0
	for _, o := range p.EntityOwner {
		if int(o) == rank {
			n++
		}
	}
	return n
}

// PreferredRank returns the rank owning the majority of the triple's three
// rows (head entity, relation, tail entity), lowest rank winning ties. It
// is the placement rule used for training shards and reused by the trainer
// for validation triples.
func (p *Plan) PreferredRank(t kg.Triple) int {
	a := int(p.EntityOwner[t.H])
	b := int(p.RelationOwner[t.R])
	c := int(p.EntityOwner[t.T])
	// Majority of three, lowest rank on a three-way tie... which is any
	// pairing that agrees; otherwise the smallest of the three.
	if a == b || a == c {
		return a
	}
	if b == c {
		return b
	}
	best := a
	if b < best {
		best = b
	}
	if c < best {
		best = c
	}
	return best
}

// RemoteRows returns how many of the triple's three rows are not owned by
// rank.
func (p *Plan) RemoteRows(t kg.Triple, rank int) int {
	n := 0
	if int(p.EntityOwner[t.H]) != rank {
		n++
	}
	if int(p.RelationOwner[t.R]) != rank {
		n++
	}
	if int(p.EntityOwner[t.T]) != rank {
		n++
	}
	return n
}

// Validate checks the plan's structural invariants: owner arrays fully
// populated with in-range ranks (every row has exactly one owner by
// construction of the arrays), and shard triples referencing in-range rows
// with one shard per rank.
func (p *Plan) Validate() error {
	if p.Ranks < 1 {
		return fmt.Errorf("partition: plan has %d ranks", p.Ranks)
	}
	if len(p.EntityOwner) != p.NumEntities || len(p.RelationOwner) != p.NumRelations {
		return fmt.Errorf("partition: owner tables sized %d/%d, want %d/%d",
			len(p.EntityOwner), len(p.RelationOwner), p.NumEntities, p.NumRelations)
	}
	for e, o := range p.EntityOwner {
		if o < 0 || int(o) >= p.Ranks {
			return fmt.Errorf("partition: entity %d has out-of-range owner %d", e, o)
		}
	}
	for r, o := range p.RelationOwner {
		if o < 0 || int(o) >= p.Ranks {
			return fmt.Errorf("partition: relation %d has out-of-range owner %d", r, o)
		}
	}
	if len(p.Shards) != p.Ranks {
		return fmt.Errorf("partition: %d shards for %d ranks", len(p.Shards), p.Ranks)
	}
	for rank, shard := range p.Shards {
		for i, t := range shard {
			if t.H < 0 || int(t.H) >= p.NumEntities || t.T < 0 || int(t.T) >= p.NumEntities ||
				t.R < 0 || int(t.R) >= p.NumRelations {
				return fmt.Errorf("partition: shard %d triple %d out of range: %+v", rank, i, t)
			}
		}
	}
	return nil
}

// Quality summarizes how good a plan is; the trainer surfaces these in the
// epoch ledger and /metrics.
type Quality struct {
	// CutRatio is the fraction of sharded training triples with at least
	// one row owned by a different rank than the triple's shard (a "cut"
	// triple needs the row exchange; 0 = perfectly local).
	CutRatio float64
	// RemoteRowFraction is the fraction of all row references (3 per
	// triple) that cross shard boundaries — the payload the batch-scoped
	// row exchange actually moves.
	RemoteRowFraction float64
	// EntityBalance is max-owned-entities / mean (1.0 = perfect).
	EntityBalance float64
	// RelationBalance is max-owned-relations / mean.
	RelationBalance float64
	// TripleBalance is max-shard-triples / mean.
	TripleBalance float64
	// MaxEntityShard is the largest per-rank entity row count — the number
	// the memory-scaling claim is asserted against.
	MaxEntityShard int
}

// Quality scans the plan once and returns its quality stats.
func (p *Plan) Quality() Quality {
	var q Quality
	entPerRank := make([]int, p.Ranks)
	for _, o := range p.EntityOwner {
		entPerRank[o]++
	}
	relPerRank := make([]int, p.Ranks)
	for _, o := range p.RelationOwner {
		relPerRank[o]++
	}
	cut, remote, triples := 0, 0, 0
	maxShard := 0
	for rank, shard := range p.Shards {
		triples += len(shard)
		if len(shard) > maxShard {
			maxShard = len(shard)
		}
		for _, t := range shard {
			r := p.RemoteRows(t, rank)
			remote += r
			if r > 0 {
				cut++
			}
		}
	}
	if triples > 0 {
		q.CutRatio = float64(cut) / float64(triples)
		q.RemoteRowFraction = float64(remote) / float64(3*triples)
		q.TripleBalance = float64(maxShard) * float64(p.Ranks) / float64(triples)
	}
	maxEnt := 0
	for _, n := range entPerRank {
		if n > maxEnt {
			maxEnt = n
		}
	}
	q.MaxEntityShard = maxEnt
	if p.NumEntities > 0 {
		q.EntityBalance = float64(maxEnt) * float64(p.Ranks) / float64(p.NumEntities)
	}
	maxRel := 0
	for _, n := range relPerRank {
		if n > maxRel {
			maxRel = n
		}
	}
	if p.NumRelations > 0 {
		q.RelationBalance = float64(maxRel) * float64(p.Ranks) / float64(p.NumRelations)
	}
	return q
}

// Build partitions the dataset's rows and training triples across
// opt.Ranks shards. The result is a pure function of (d, opt): every rank
// of a job calls Build with identical arguments and obtains the identical
// plan without communication.
func Build(d *kg.Dataset, opt Options) (*Plan, error) {
	opt = opt.withDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{
		Ranks:        opt.Ranks,
		NumEntities:  d.NumEntities,
		NumRelations: d.NumRelations,
		Algo:         opt.Algo,
		Seed:         opt.Seed,
	}
	switch opt.Algo {
	case "hash":
		p.EntityOwner = hashOwners(d.NumEntities, opt.Ranks, opt.Seed, 0x9e3779b97f4a7c15)
		p.RelationOwner = hashOwners(d.NumRelations, opt.Ranks, opt.Seed, 0xbf58476d1ce4e5b9)
	default: // mincut
		p.EntityOwner, p.RelationOwner = mincutOwners(d, opt)
	}
	p.Shards = placeTriples(d.Train, p, opt)
	return p, nil
}

// hashOwners assigns n ids to ranks by seeded splitmix64 finalization —
// uniform in expectation, locality-blind by design.
func hashOwners(n, ranks int, seed, salt uint64) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(mix64(seed^salt^uint64(i)) % uint64(ranks))
	}
	return out
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer (Steele et al.), used for both the hash partitioner and the
// mincut tie-break jitter.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mincutOwners is the "mincut" partitioner: a relation-led greedy pass.
// Relations are the locality unit of a knowledge graph — all triples of one
// relation connect the same neighbourhoods — so relations are placed first,
// each on the rank whose already-placed triples share the most entity
// endpoints with it (descending triple-count order: heavy relations pick
// while the canvas is open). Entities then follow the rank where most of
// their triple endpoints landed. Each pass enforces two balance caps: a
// row-count cap (the per-rank memory bound) and a triple-mass cap (so the
// Zipf-heavy head of the relation histogram cannot steer nearly all triples'
// majority votes onto one rank, which would force placeTriples to demote
// them to shards with zero locality).
func mincutOwners(d *kg.Dataset, opt Options) (entOwner, relOwner []int32) {
	nE, nR, p := d.NumEntities, d.NumRelations, opt.Ranks
	entOwner = make([]int32, nE)
	relOwner = make([]int32, nR)
	if p == 1 {
		return entOwner, relOwner
	}

	// Training triples grouped by relation, CSR-style.
	count := make([]int, nR)
	for _, t := range d.Train {
		count[t.R]++
	}
	off := make([]int, nR+1)
	for r := 0; r < nR; r++ {
		off[r+1] = off[r] + count[r]
	}
	byRel := make([]kg.Triple, len(d.Train))
	fill := make([]int, nR)
	for _, t := range d.Train {
		byRel[off[t.R]+fill[t.R]] = t
		fill[t.R]++
	}

	// ---- Pass 1: relations, heaviest first, by shared-entity affinity ----
	relOrder := make([]int, nR)
	for i := range relOrder {
		relOrder[i] = i
	}
	sort.Slice(relOrder, func(i, j int) bool {
		a, b := relOrder[i], relOrder[j]
		if count[a] != count[b] {
			return count[a] > count[b]
		}
		return mix64(opt.Seed^0xa0761d6478bd642f^uint64(a)) < mix64(opt.Seed^0xa0761d6478bd642f^uint64(b))
	})

	// entMass[e*p+k]: endpoint appearances of entity e among triples whose
	// relation is already placed on rank k. It is both the affinity signal
	// for pass 1 and the vote table for pass 2.
	entMass := make([]int, nE*p)
	relCap := balanceCap(nR, p, opt.Slack)
	massCap := balanceCap(len(d.Train), p, opt.Slack)
	relLoad := make([]int, p)
	massLoad := make([]int, p)
	gain := make([]int64, p)
	for _, r := range relOrder {
		ts := byRel[off[r]:off[r+1]]
		for k := range gain {
			gain[k] = 0
		}
		for _, t := range ts {
			h, tl := int(t.H)*p, int(t.T)*p
			for k := 0; k < p; k++ {
				gain[k] += int64(entMass[h+k] + entMass[tl+k])
			}
		}
		best := -1
		for k := 0; k < p; k++ {
			if relLoad[k] >= relCap || massLoad[k]+count[r] > massCap {
				continue
			}
			if best < 0 || gain[k] > gain[best] ||
				(gain[k] == gain[best] && massLoad[k] < massLoad[best]) {
				best = k
			}
		}
		if best < 0 {
			// Mass caps saturated (one relation can dominate the corpus):
			// relax to the row cap, mass-lightest rank.
			for k := 0; k < p; k++ {
				if relLoad[k] >= relCap {
					continue
				}
				if best < 0 || massLoad[k] < massLoad[best] {
					best = k
				}
			}
		}
		if best < 0 {
			// Every rank at the row cap (possible only through rounding):
			// the globally lightest rank, preserving every-row-owned.
			best = lightest(relLoad)
		}
		relOwner[r] = int32(best)
		relLoad[best]++
		massLoad[best] += count[r]
		for _, t := range ts {
			entMass[int(t.H)*p+best]++
			entMass[int(t.T)*p+best]++
		}
	}

	// ---- Pass 2: entities follow their endpoint mass ----
	deg := make([]int, nE)
	for _, t := range d.Train {
		deg[t.H]++
		deg[t.T]++
	}
	entOrder := make([]int, nE)
	for i := range entOrder {
		entOrder[i] = i
	}
	sort.Slice(entOrder, func(i, j int) bool {
		a, b := entOrder[i], entOrder[j]
		if deg[a] != deg[b] {
			return deg[a] > deg[b]
		}
		return mix64(opt.Seed^uint64(a)) < mix64(opt.Seed^uint64(b))
	})
	// Entities are capped on row count (memory) and on degree mass: without
	// the latter the hub entities all follow the same rank, and pairs of
	// co-located hubs outvote their relation's owner in the triple majority,
	// skewing the preference distribution past what placeTriples can absorb.
	entCap := balanceCap(nE, p, opt.Slack)
	degCap := balanceCap(2*len(d.Train), p, opt.Slack)
	load := make([]int, p)
	degLoad := make([]int, p)
	for _, e := range entOrder {
		m := entMass[e*p : e*p+p]
		best := -1
		for k := 0; k < p; k++ {
			if load[k] >= entCap || degLoad[k]+deg[e] > degCap {
				continue
			}
			if best < 0 || m[k] > m[best] ||
				(m[k] == m[best] && degLoad[k] < degLoad[best]) {
				best = k
			}
		}
		if best < 0 {
			// Degree caps saturated (a single hub can overflow every rank's
			// remaining budget): relax to the row cap, degree-lightest rank.
			for k := 0; k < p; k++ {
				if load[k] >= entCap {
					continue
				}
				if best < 0 || degLoad[k] < degLoad[best] {
					best = k
				}
			}
		}
		if best < 0 {
			best = lightest(load)
		}
		entOwner[e] = int32(best)
		load[best]++
		degLoad[best] += deg[e]
	}
	return entOwner, relOwner
}

// placeTriples shards the training triples: each goes to the rank owning
// most of its three rows (PreferredRank), subject to the shard balance cap.
// When a rank's preference count overflows its cap, the demotion victims
// are chosen by locality, least-local first: a fully-local triple costs two
// extra remote rows when displaced, a 2-of-3 triple only one, so keeping
// the fully-local ones caps the balance penalty on the row exchange.
// Output order within a shard follows the input order, so downstream
// shuffling stays seeded.
func placeTriples(train []kg.Triple, p *Plan, opt Options) [][]kg.Triple {
	shards := make([][]kg.Triple, opt.Ranks)
	if opt.Ranks == 1 {
		shards[0] = append([]kg.Triple(nil), train...)
		return shards
	}
	capPerRank := balanceCap(len(train), opt.Ranks, opt.Slack)

	// First sweep: preference and locality per triple, preference counts
	// per rank.
	pref := make([]int32, len(train))
	local := make([]int8, len(train))
	prefCount := make([]int, opt.Ranks)
	for i, t := range train {
		pr := p.PreferredRank(t)
		pref[i] = int32(pr)
		local[i] = int8(3 - p.RemoteRows(t, pr))
		prefCount[pr]++
	}

	// Victim selection per overflowing rank: keep locality-3 triples first,
	// then locality-2, earlier input index winning within a class.
	demote := make([]bool, len(train))
	for k := 0; k < opt.Ranks; k++ {
		over := prefCount[k] - capPerRank
		if over <= 0 {
			continue
		}
		kept := 0
		for class := int8(3); class >= 1; class-- {
			for i := range train {
				if pref[i] != int32(k) || local[i] != class {
					continue
				}
				if kept < capPerRank {
					kept++
				} else {
					demote[i] = true
				}
			}
		}
	}

	// Victims may only take a rank's spare capacity beyond its own keeps —
	// otherwise an early victim could fill a slot a later keep needs and
	// push that rank over the cap.
	room := make([]int, opt.Ranks)
	for k := 0; k < opt.Ranks; k++ {
		kept := prefCount[k]
		if kept > capPerRank {
			kept = capPerRank
		}
		room[k] = capPerRank - kept
	}

	// Second sweep, input order: survivors to their preferred rank, victims
	// to the row-owner rank with the most of their rows among those with
	// room (so a displaced triple keeps what locality it can), else the
	// rank with the most room.
	for i, t := range train {
		best := int(pref[i])
		if demote[i] {
			owners := [3]int{int(p.EntityOwner[t.H]), int(p.RelationOwner[t.R]), int(p.EntityOwner[t.T])}
			best = -1
			bestOwned := 0
			for _, cand := range owners {
				if room[cand] <= 0 {
					continue
				}
				owned := 0
				for _, o := range owners {
					if o == cand {
						owned++
					}
				}
				if best < 0 || owned > bestOwned ||
					(owned == bestOwned && room[cand] > room[best]) {
					best, bestOwned = cand, owned
				}
			}
			if best < 0 {
				// No row owner has room; the roomiest rank always exists
				// because the caps sum to at least the triple count.
				best = 0
				for r := 1; r < opt.Ranks; r++ {
					if room[r] > room[best] {
						best = r
					}
				}
			}
			room[best]--
		}
		shards[best] = append(shards[best], t)
	}
	return shards
}

// balanceCap returns the per-shard item cap total/p scaled by (1+slack),
// rounded up, never below ceil(total/p) so a cap can always hold a perfect
// split.
func balanceCap(total, p int, slack float64) int {
	perfect := (total + p - 1) / p
	c := int(float64(total) / float64(p) * (1 + slack))
	if c < perfect {
		c = perfect
	}
	return c
}

func lightest(load []int) int {
	best := 0
	for r := 1; r < len(load); r++ {
		if load[r] < load[best] {
			best = r
		}
	}
	return best
}

// BalanceBound returns the maximum owned-row count a plan built with the
// given slack may assign to one rank: the balance cap plus one for cap
// rounding — the bound the property tests and the trainer's memory
// assertion check against.
func BalanceBound(total, ranks int, slack float64) int {
	if slack == 0 {
		slack = DefaultSlack
	}
	return balanceCap(total, ranks, slack) + 1
}
