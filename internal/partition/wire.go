package partition

import (
	"encoding/binary"
	"fmt"
)

// Wire codec for row-id request lists. The row exchange broadcasts each
// rank's wanted-row ids with an all-gather of opaque byte payloads; this is
// that payload's format: a little-endian uint32 count followed by the ids.
// Payloads are freshly allocated by EncodeIDs because the all-gather
// contract transfers ownership of the payload to the world (see the mpi
// package comment) — they must never come from recycled scratch.

// idWireMagic guards against a foreign payload being decoded as a request
// list (the exchange shares the collective machinery with gradient
// payloads).
const idWireMagic = uint32(0x52494453) // "RIDS"

// EncodeIDs marshals a sorted id list into a fresh wire payload.
func EncodeIDs(ids []int32) []byte {
	out := make([]byte, 8+4*len(ids))
	binary.LittleEndian.PutUint32(out[0:4], idWireMagic)
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(ids)))
	for i, id := range ids {
		binary.LittleEndian.PutUint32(out[8+4*i:], uint32(id))
	}
	return out
}

// DecodeIDs unmarshals a request payload into dst (reused, returned
// re-sliced) and errors on malformed input.
func DecodeIDs(dst []int32, payload []byte) ([]int32, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("partition: id payload truncated at %d bytes", len(payload))
	}
	if binary.LittleEndian.Uint32(payload[0:4]) != idWireMagic {
		return nil, fmt.Errorf("partition: id payload has wrong magic")
	}
	n := int(binary.LittleEndian.Uint32(payload[4:8]))
	if len(payload) != 8+4*n {
		return nil, fmt.Errorf("partition: id payload declares %d ids but carries %d bytes", n, len(payload)-8)
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, int32(binary.LittleEndian.Uint32(payload[8+4*i:])))
	}
	return dst, nil
}
