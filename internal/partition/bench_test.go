package partition

import (
	"fmt"
	"testing"

	"kgedist/internal/kg"
)

func benchKG(b *testing.B) *kg.Dataset {
	b.Helper()
	return kg.Generate(kg.GenConfig{
		Name:     "part-bench",
		Entities: 5000, Relations: 200, Triples: 60000,
		Communities: 20,
		Seed:        11,
	})
}

func BenchmarkBuild(b *testing.B) {
	d := benchKG(b)
	for _, algo := range []string{"mincut", "hash"} {
		for _, p := range []int{4, 16} {
			b.Run(fmt.Sprintf("%s/p=%d", algo, p), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Build(d, Options{Ranks: p, Algo: algo, Seed: 3}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkQuality(b *testing.B) {
	d := benchKG(b)
	pl, err := Build(d, Options{Ranks: 8, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pl.Quality()
	}
}

func BenchmarkEncodeDecodeIDs(b *testing.B) {
	ids := make([]int32, 2048)
	for i := range ids {
		ids[i] = int32(i * 5)
	}
	var dst []int32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload := EncodeIDs(ids)
		var err error
		dst, err = DecodeIDs(dst, payload)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = dst
}
