// Package ps implements a synchronous parameter-server trainer — the
// alternative distributed-training architecture the paper's introduction
// describes and argues against ("the main drawback of this approach is the
// communication bottleneck to the server... more than one server creates an
// all-to-all communication pattern that is not efficient").
//
// It exists as a measurable baseline: server nodes hold shards of the
// embedding matrices; worker nodes hold no replica and, per batch, pull the
// rows their triples touch and push gradient rows back. Every transfer is
// charged to the shared simnet cluster, so the server-bottleneck effect is
// directly visible next to the all-reduce/all-gather numbers from
// internal/core.
package ps

import (
	"fmt"
	"sync"

	"kgedist/internal/eval"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/opt"
	"kgedist/internal/simnet"
	"kgedist/internal/xrand"
)

// Config assembles a parameter-server run. Mirrors core.Config where the
// concepts coincide.
type Config struct {
	// ModelName and Dim select the KGE model.
	ModelName string
	Dim       int
	// OptimizerName is applied server-side (the classic PS design).
	OptimizerName string
	// BatchSize is the per-worker batch size.
	BatchSize int
	// BaseLR is scaled by min(LRScaleCap, workers), as in core.
	BaseLR     float64
	LRScaleCap int
	// MaxEpochs bounds training (PS runs have no plateau logic; the
	// baseline is used for fixed-epoch comparisons).
	MaxEpochs int
	// NegSamples per positive.
	NegSamples int
	// TestSample subsamples the final MRR ranking.
	TestSample int
	Seed       uint64
}

// DefaultConfig mirrors core.DefaultConfig for the shared fields.
func DefaultConfig() Config {
	return Config{
		ModelName:     "complex",
		Dim:           32,
		OptimizerName: "adam",
		BatchSize:     2000,
		BaseLR:        0.01,
		LRScaleCap:    4,
		MaxEpochs:     30,
		NegSamples:    1,
		TestSample:    150,
		Seed:          1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Dim <= 0 || c.BatchSize <= 0 || c.MaxEpochs <= 0 || c.NegSamples < 1 {
		return fmt.Errorf("ps: invalid config %+v", c)
	}
	return nil
}

// Result summarizes a parameter-server run.
type Result struct {
	Workers    int
	Servers    int
	Epochs     int
	TotalHours float64
	CommBytes  int64
	CommHours  float64
	TCA        float64
	MRR        float64
	// PullBytes and PushBytes split the volume by direction.
	PullBytes int64
	PushBytes int64
}

// Train runs synchronous parameter-server training with the given worker
// and server counts. Workers and servers are distinct simulated nodes
// (workers+servers clocks total).
func Train(cfg Config, d *kg.Dataset, workers, servers int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 || servers < 1 {
		return nil, fmt.Errorf("ps: need at least 1 worker and 1 server, got %d/%d", workers, servers)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(d.Train) == 0 {
		return nil, fmt.Errorf("ps: empty training split")
	}

	m := model.New(cfg.ModelName, cfg.Dim)
	width := m.Width()
	cluster := simnet.NewCluster(workers+servers, simnet.XC40Params())

	// Authoritative parameters live on the servers; row r of the entity
	// matrix belongs to server r % servers (likewise relations).
	params := model.NewParams(m, d.NumEntities, d.NumRelations)
	params.Init(m, xrand.New(cfg.Seed).Split(0))
	entOpt := opt.NewByName(cfg.OptimizerName, d.NumEntities, width)
	relOpt := opt.NewByName(cfg.OptimizerName, d.NumRelations, width)

	baseRng := xrand.New(cfg.Seed)
	shuffled := append([]kg.Triple(nil), d.Train...)
	baseRng.Split(77).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	shards := kg.UniformPartition(shuffled, workers)
	maxShard := 0
	for _, s := range shards {
		if len(s) > maxShard {
			maxShard = len(s)
		}
	}
	batches := (maxShard + cfg.BatchSize - 1) / cfg.BatchSize
	lr := float32(opt.ScaledLR(cfg.BaseLR, workers, cfg.LRScaleCap))

	var pullBytes, pushBytes int64
	var mu sync.Mutex

	res := &Result{Workers: workers, Servers: servers}
	type batchGrad struct {
		ent, rel *grad.SparseGrad
	}
	for epoch := 1; epoch <= cfg.MaxEpochs; epoch++ {
		for b := 0; b < batches; b++ {
			grads := make([]batchGrad, workers)
			var wg sync.WaitGroup
			for wID := 0; wID < workers; wID++ {
				wg.Add(1)
				go func(wID int) {
					defer wg.Done()
					shard := shards[wID]
					if len(shard) == 0 {
						grads[wID] = batchGrad{grad.NewSparseGrad(width), grad.NewSparseGrad(width)}
						return
					}
					rng := xrand.New(cfg.Seed).Split(uint64(1000*epoch + 10*b + wID))
					sampler := model.NewNegSampler(d.NumEntities, rng)
					entG := grad.NewSparseGrad(width)
					relG := grad.NewSparseGrad(width)
					n := cfg.BatchSize
					if len(shard) < n {
						n = len(shard)
					}
					var flops float64
					for i := 0; i < n; i++ {
						pos := shard[(b*cfg.BatchSize+i)%len(shard)]
						flops += accumulate(m, params, pos, 1, entG, relG)
						for k := 0; k < cfg.NegSamples; k++ {
							neg := sampler.Corrupt(pos)
							flops += accumulate(m, params, neg, -1, entG, relG)
						}
					}
					cluster.AddCompute(wID, flops)
					// Pull cost: the worker fetched every touched row once
					// (entities + relations), response bytes dominate.
					pulled := int64((entG.Len() + relG.Len()) * (4 + 4*width))
					mu.Lock()
					pullBytes += pulled
					pushBytes += pulled // gradient push mirrors the pull volume
					mu.Unlock()
					grads[wID] = batchGrad{entG, relG}
				}(wID)
			}
			wg.Wait()

			// Charge the server-side communication: each worker exchanges
			// its rows with every server holding them. The bottleneck is
			// the busiest server: total bytes / servers, serialized there.
			var roundBytes int64
			var msgs int64
			for _, g := range grads {
				roundBytes += int64((g.ent.Len() + g.rel.Len()) * (4 + 4*width))
				msgs += 2 * int64(servers) // one pull + one push per server
			}
			roundBytes *= 2 // pull + push
			perServer := roundBytes / int64(servers)
			p := cluster.Params()
			cost := float64(msgs)*p.Alpha/float64(workers+servers) + float64(perServer)*p.Beta
			cluster.Collective(cost, roundBytes, msgs, "ps")

			// Servers apply the aggregated gradients (averaged over
			// workers), one optimizer step per batch.
			entAgg := grad.NewSparseGrad(width)
			relAgg := grad.NewSparseGrad(width)
			for _, g := range grads {
				idx, flat := g.ent.Flatten()
				entAgg.AddFlat(idx, flat)
				idx, flat = g.rel.Flatten()
				relAgg.AddFlat(idx, flat)
			}
			inv := 1 / float32(workers)
			apply := func(o opt.Optimizer, mtx interface {
				Row(int) []float32
			}, agg *grad.SparseGrad) {
				if agg.Len() == 0 {
					return
				}
				o.BeginStep()
				agg.ForEach(func(id int32, row []float32) {
					for i := range row {
						row[i] *= inv
					}
					o.ApplyRow(id, mtx.Row(int(id)), row, lr)
				})
			}
			apply(entOpt, params.Entity, entAgg)
			apply(relOpt, params.Relation, relAgg)
			// Server apply compute, charged to the server clocks.
			applyFlops := float64((entAgg.Len() + relAgg.Len()) * width * 12)
			for s := 0; s < servers; s++ {
				cluster.AddCompute(workers+s, applyFlops/float64(servers))
			}
		}
		res.Epochs = epoch
	}

	filter := kg.NewFilterIndex(d)
	evalRng := xrand.New(cfg.Seed + 999)
	lp := eval.LinkPrediction(m, params, d, filter, cfg.TestSample, evalRng)
	tc := eval.TripleClassification(m, params, d, filter, evalRng)
	st := cluster.Stats()
	res.TotalHours = cluster.MaxTime() / 3600
	res.CommBytes = st.BytesMoved
	res.CommHours = st.CommSeconds / 3600
	res.MRR = lp.FilteredMRR
	res.TCA = tc.Accuracy
	res.PullBytes = pullBytes
	res.PushBytes = pushBytes
	return res, nil
}

func accumulate(m model.Model, p *model.Params, tr kg.Triple, y float32, entG, relG *grad.SparseGrad) float64 {
	score := m.Score(p, tr)
	coef := model.LogisticLossGrad(score, y)
	m.AccumulateScoreGrad(p, tr, coef, entG.Row(tr.H), relG.Row(tr.R), entG.Row(tr.T))
	return m.ScoreFlops() + m.GradFlops()
}
