package ps

import (
	"testing"

	"kgedist/internal/kg"
)

func psDataset() *kg.Dataset {
	return kg.Generate(kg.GenConfig{
		Name: "ps-test", Entities: 400, Relations: 40, Triples: 6000,
		Communities: 8, Seed: 21,
	})
}

func psConfig() Config {
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.BaseLR = 0.02
	cfg.BatchSize = 500
	cfg.MaxEpochs = 10
	cfg.TestSample = 50
	cfg.Seed = 5
	return cfg
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Dim = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestTrainRejectsBadInputs(t *testing.T) {
	d := psDataset()
	if _, err := Train(psConfig(), d, 0, 1); err == nil {
		t.Fatal("accepted 0 workers")
	}
	if _, err := Train(psConfig(), d, 2, 0); err == nil {
		t.Fatal("accepted 0 servers")
	}
	empty := &kg.Dataset{NumEntities: 10, NumRelations: 2}
	if _, err := Train(psConfig(), empty, 1, 1); err == nil {
		t.Fatal("accepted empty dataset")
	}
}

func TestPSLearns(t *testing.T) {
	cfg := psConfig()
	cfg.MaxEpochs = 25
	res, err := Train(cfg, psDataset(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 25 {
		t.Fatalf("epochs = %d", res.Epochs)
	}
	if res.TCA < 70 {
		t.Fatalf("PS TCA = %v, expected learning", res.TCA)
	}
	if res.MRR < 0.05 {
		t.Fatalf("PS MRR = %v", res.MRR)
	}
	if res.CommBytes == 0 || res.PullBytes == 0 || res.PushBytes == 0 {
		t.Fatalf("communication not recorded: %+v", res)
	}
	if res.TotalHours <= 0 {
		t.Fatal("no virtual time charged")
	}
}

func TestMoreServersRelieveBottleneck(t *testing.T) {
	// The paper's intro: one server is a bottleneck; more servers shard
	// the volume. With fixed workers, total time must drop (or at least
	// not rise) as servers grow, while total bytes stay the same.
	cfg := psConfig()
	cfg.MaxEpochs = 3
	d := psDataset()
	r1, err := Train(cfg, d, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Train(cfg, d, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.CommHours >= r1.CommHours {
		t.Fatalf("4 servers (%v comm h) not cheaper than 1 (%v comm h)", r4.CommHours, r1.CommHours)
	}
	if r1.CommBytes != r4.CommBytes {
		t.Fatalf("byte volume should not depend on server count: %d vs %d", r1.CommBytes, r4.CommBytes)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := psConfig()
	cfg.MaxEpochs = 3
	d := psDataset()
	a, err := Train(cfg, d, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg, d, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.MRR != b.MRR || a.CommBytes != b.CommBytes {
		t.Fatalf("non-deterministic PS training: %+v vs %+v", a, b)
	}
}
