package model

import (
	"math"

	"kgedist/internal/xrand"
)

// ClusteredInit fills parameters with a community-structured random
// initialization: entities are drawn around one of clusters shared
// prototype rows with per-coordinate gaussian spread, relations are plain
// gaussian. The geometry imitates a trained embedding table — entities
// related through the same neighborhoods end up near each other, so
// ranking a completion query has a well-separated true top instead of the
// flat spectrum of iid rows. The serving benchmarks and the binarized
// recall gate use this to get trained-like candidate separation from a
// seeded checkpoint without paying for a training run.
//
// spread is the ratio of within-cluster noise to prototype scale; 0.25
// gives cluster diameters well under the inter-prototype distance at
// serving dimensions. Relations are drawn at the same noise scale, not the
// prototype scale: in a converged translational model the relation offset
// moves a head *within* the true tail's neighborhood rather than across
// clusters, and that is the geometry that makes completion queries have a
// well-separated answer set. Deterministic for a fixed rng state.
func (p *Params) ClusteredInit(m Model, clusters int, spread float64, rng *xrand.RNG) {
	if clusters <= 0 {
		clusters = 1
	}
	width := m.Width()
	sigma := 1.0 / math.Sqrt(float64(m.Dim()))
	protos := make([]float32, clusters*width)
	for i := range protos {
		protos[i] = float32(rng.NormFloat64() * sigma)
	}
	noise := float32(spread * sigma)
	for e := 0; e < p.Entity.Rows; e++ {
		proto := protos[(e%clusters)*width : (e%clusters+1)*width]
		row := p.Entity.Row(e)
		for d := range row {
			row[d] = proto[d] + noise*float32(rng.NormFloat64())
		}
	}
	p.Relation.RandomizeNormal(noise, rng.NormFloat64)
}
