package model

import (
	"math"
	"testing"

	"kgedist/internal/kg"
	"kgedist/internal/xrand"
)

func TestExtraModelsByName(t *testing.T) {
	for _, name := range []string{"rotate", "transh", "simple"} {
		m := New(name, 6)
		if m.Name() != name || m.Dim() != 6 {
			t.Fatalf("New(%q) => %s/%d", name, m.Name(), m.Dim())
		}
		if m.Width() != 12 {
			t.Fatalf("%s width = %d, want 12", name, m.Width())
		}
		if m.ScoreFlops() <= 0 || m.GradFlops() <= 0 {
			t.Fatalf("%s flops not positive", name)
		}
	}
}

func TestExtraModelsPanicOnBadDim(t *testing.T) {
	for _, f := range []func(){
		func() { NewRotatE(0) },
		func() { NewTransH(-1) },
		func() { NewSimplE(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRotatEScoreHandComputed(t *testing.T) {
	// dim=1: h = 1+2i, r = 0+1i (90-degree rotation), t = -2+1i.
	// h o r = (1+2i)(0+1i) = -2 + 1i = t exactly -> score 0.
	m := NewRotatE(1)
	p := NewParams(m, 2, 1)
	copy(p.Entity.Row(0), []float32{1, 2})
	copy(p.Relation.Row(0), []float32{0, 1})
	copy(p.Entity.Row(1), []float32{-2, 1})
	if got := m.Score(p, kg.Triple{H: 0, R: 0, T: 1}); got != 0 {
		t.Fatalf("exact rotation score = %v, want 0", got)
	}
	// Perturb the tail: score drops below zero.
	p.Entity.Row(1)[0] = -1
	if got := m.Score(p, kg.Triple{H: 0, R: 0, T: 1}); got != -1 {
		t.Fatalf("perturbed score = %v, want -1", got)
	}
}

func TestSimplEScoreHandComputed(t *testing.T) {
	m := NewSimplE(1)
	p := NewParams(m, 2, 1)
	copy(p.Entity.Row(0), []float32{2, 3}) // h: head-role 2, tail-role 3
	copy(p.Entity.Row(1), []float32{5, 7}) // t: head-role 5, tail-role 7
	copy(p.Relation.Row(0), []float32{11, 13})
	// (h_H * r_f * t_T + t_H * r_i * h_T)/2 = (2*11*7 + 5*13*3)/2.
	want := float32(2*11*7+5*13*3) / 2
	if got := m.Score(p, kg.Triple{H: 0, R: 0, T: 1}); got != want {
		t.Fatalf("score = %v, want %v", got, want)
	}
}

func TestTransHProjectionInvariance(t *testing.T) {
	// With w = 0 the hyperplane projection is the identity and TransH
	// reduces to TransE with translation d.
	m := NewTransH(3)
	p := NewParams(m, 2, 1)
	copy(p.Entity.Row(0)[:3], []float32{1, 2, 3})
	copy(p.Entity.Row(1)[:3], []float32{2, 2, 2})
	rel := p.Relation.Row(0)
	copy(rel[3:], []float32{1, 0, -1}) // d
	// h + d - t = (0, 0, 0) -> score 0.
	if got := m.Score(p, kg.Triple{H: 0, R: 0, T: 1}); got != 0 {
		t.Fatalf("score = %v, want 0", got)
	}
}

func TestExtraModelGradientsMatchNumerical(t *testing.T) {
	for _, name := range []string{"rotate", "transh", "simple"} {
		m := New(name, 4)
		p := testParams(m, 5, 3, 77)
		tr := kg.Triple{H: 1, R: 2, T: 3}
		w := m.Width()
		gh := make([]float32, w)
		gr := make([]float32, w)
		gt := make([]float32, w)
		m.AccumulateScoreGrad(p, tr, 1.0, gh, gr, gt)
		for c := 0; c < w; c++ {
			if want := numericalGrad(m, p, tr, "entity", 1, c); math.Abs(float64(gh[c])-want) > 3e-2 {
				t.Fatalf("%s: dScore/dH[%d] = %v, numerical %v", name, c, gh[c], want)
			}
			if want := numericalGrad(m, p, tr, "relation", 2, c); math.Abs(float64(gr[c])-want) > 3e-2 {
				t.Fatalf("%s: dScore/dR[%d] = %v, numerical %v", name, c, gr[c], want)
			}
			if want := numericalGrad(m, p, tr, "entity", 3, c); math.Abs(float64(gt[c])-want) > 3e-2 {
				t.Fatalf("%s: dScore/dT[%d] = %v, numerical %v", name, c, gt[c], want)
			}
		}
	}
}

func TestExtraModelGradCoefLinearity(t *testing.T) {
	for _, name := range []string{"rotate", "transh", "simple"} {
		m := New(name, 3)
		p := testParams(m, 4, 2, 5)
		tr := kg.Triple{H: 0, R: 1, T: 2}
		w := m.Width()
		g1 := make([]float32, 3*w)
		g2 := make([]float32, 3*w)
		m.AccumulateScoreGrad(p, tr, 1, g1[:w], g1[w:2*w], g1[2*w:])
		m.AccumulateScoreGrad(p, tr, 3, g2[:w], g2[w:2*w], g2[2*w:])
		for i := range g1 {
			if math.Abs(float64(g2[i]-3*g1[i])) > 1e-4 {
				t.Fatalf("%s: coef not linear at %d: %v vs %v", name, i, g2[i], 3*g1[i])
			}
		}
	}
}

func TestNormalizePhase(t *testing.T) {
	row := []float32{3, 0, 4, 3} // pairs (3,4), (0,3)
	normalizePhase(row, 2)
	if math.Abs(float64(row[0])-0.6) > 1e-6 || math.Abs(float64(row[2])-0.8) > 1e-6 {
		t.Fatalf("pair 0 not normalized: %v", row)
	}
	if row[1] != 0 || math.Abs(float64(row[3])-1) > 1e-6 {
		t.Fatalf("pair 1 not normalized: %v", row)
	}
	zero := []float32{0, 0}
	normalizePhase(zero, 1) // must not divide by zero
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("zero pair mutated")
	}
}

func TestExtraModelsLearnDirectionally(t *testing.T) {
	// One gradient step on a single positive triple must raise its score.
	rng := xrand.New(9)
	for _, name := range []string{"rotate", "transh", "simple"} {
		m := New(name, 4)
		p := NewParams(m, 6, 2)
		p.Init(m, rng.Split(uint64(len(name))))
		tr := kg.Triple{H: 0, R: 0, T: 1}
		before := m.Score(p, tr)
		w := m.Width()
		gh := make([]float32, w)
		gr := make([]float32, w)
		gt := make([]float32, w)
		coef := LogisticLossGrad(before, 1) // positive label
		m.AccumulateScoreGrad(p, tr, coef, gh, gr, gt)
		lr := float32(0.1)
		for i := 0; i < w; i++ {
			p.Entity.Row(0)[i] -= lr * gh[i]
			p.Relation.Row(0)[i] -= lr * gr[i]
			p.Entity.Row(1)[i] -= lr * gt[i]
		}
		after := m.Score(p, tr)
		if after <= before {
			t.Fatalf("%s: descent step did not raise positive score: %v -> %v", name, before, after)
		}
	}
}
