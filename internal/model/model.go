// Package model implements the knowledge-graph embedding models: ComplEx
// (the paper's model), plus DistMult and TransE as baselines the strategies
// generalize to. Gradients are hand-derived closed forms, verified against
// numerical differentiation in the tests.
package model

import (
	"math"

	"kgedist/internal/kg"
	"kgedist/internal/tensor"
	"kgedist/internal/xrand"
)

// Params hold the trainable state: one embedding row per entity and per
// relation. Width (floats per row) depends on the model: 2*Dim for ComplEx
// (real and imaginary halves concatenated), Dim for the real-valued models.
type Params struct {
	Entity   *tensor.Matrix
	Relation *tensor.Matrix
}

// NewParams allocates zeroed parameters for a model over the dataset shape.
func NewParams(m Model, numEntities, numRelations int) *Params {
	return &Params{
		Entity:   tensor.NewMatrix(numEntities, m.Width()),
		Relation: tensor.NewMatrix(numRelations, m.Width()),
	}
}

// Init fills parameters with the model's preferred random initialization.
func (p *Params) Init(m Model, rng *xrand.RNG) {
	sigma := float32(1.0 / math.Sqrt(float64(m.Dim())))
	p.Entity.RandomizeNormal(sigma, rng.NormFloat64)
	p.Relation.RandomizeNormal(sigma, rng.NormFloat64)
}

// Clone deep-copies the parameters.
func (p *Params) Clone() *Params {
	return &Params{Entity: p.Entity.Clone(), Relation: p.Relation.Clone()}
}

// Model scores triples and exposes the gradient of the score with respect
// to the three embedding rows involved.
type Model interface {
	// Name identifies the model ("complex", "distmult", "transe").
	Name() string
	// Dim is the nominal embedding dimension.
	Dim() int
	// Width is the number of floats per embedding row (2*Dim for ComplEx).
	Width() int
	// Score returns the plausibility score of a triple; higher = more
	// plausible.
	Score(p *Params, t kg.Triple) float32
	// ScoreRows scores from explicit embedding rows (head, relation, tail),
	// each Width() long. Callers that must not touch the shared store
	// directly — the lock-free hogwild workers score thread-local row
	// snapshots — go through this entry point.
	ScoreRows(h, r, t []float32) float32
	// AccumulateScoreGrad adds coef * dScore/dRow into the three gradient
	// rows (head entity, relation, tail entity), each Width() long.
	AccumulateScoreGrad(p *Params, t kg.Triple, coef float32, gh, gr, gt []float32)
	// AccumulateScoreGradRows is AccumulateScoreGrad over explicit embedding
	// rows, pairing with ScoreRows.
	AccumulateScoreGradRows(h, r, t []float32, coef float32, gh, gr, gt []float32)
	// ScoreFlops estimates floating-point operations of one Score call,
	// used by the simulated compute-time model.
	ScoreFlops() float64
	// GradFlops estimates flops of one AccumulateScoreGrad call.
	GradFlops() float64
}

// scoreVia implements Score by fetching the triple's rows from the store
// and delegating to ScoreRows; every concrete model uses it.
func scoreVia(m Model, p *Params, t kg.Triple) float32 {
	return m.ScoreRows(p.Entity.Row(int(t.H)), p.Relation.Row(int(t.R)), p.Entity.Row(int(t.T)))
}

// gradVia implements AccumulateScoreGrad via AccumulateScoreGradRows.
func gradVia(m Model, p *Params, t kg.Triple, coef float32, gh, gr, gt []float32) {
	m.AccumulateScoreGradRows(p.Entity.Row(int(t.H)), p.Relation.Row(int(t.R)), p.Entity.Row(int(t.T)), coef, gh, gr, gt)
}

// New constructs a model by name; the canonical names are "complex",
// "distmult" and "transe". It panics on an unknown name.
func New(name string, dim int) Model {
	switch name {
	case "complex":
		return NewComplEx(dim)
	case "distmult":
		return NewDistMult(dim)
	case "transe":
		return NewTransE(dim)
	case "rotate":
		return NewRotatE(dim)
	case "transh":
		return NewTransH(dim)
	case "simple":
		return NewSimplE(dim)
	}
	panic("model: unknown model " + name)
}

// IsKnownModel reports whether New accepts the name. Callers that receive a
// model name from untrusted bytes (checkpoint headers, request payloads)
// must check it here instead of letting New panic.
func IsKnownModel(name string) bool {
	switch name {
	case "complex", "distmult", "transe", "rotate", "transh", "simple":
		return true
	}
	return false
}

// Sigmoid is the logistic function, exposed for loss computations.
func Sigmoid(x float32) float32 {
	return float32(1.0 / (1.0 + math.Exp(-float64(x))))
}

// LogisticLoss returns log(1 + exp(-y*score)), the paper's per-triple loss
// (§3.1), with y = +1 for positive and -1 for negative triples.
func LogisticLoss(score float32, y float32) float32 {
	x := float64(-y * score)
	// Stable softplus.
	if x > 30 {
		return float32(x)
	}
	return float32(math.Log1p(math.Exp(x)))
}

// LogisticLossGrad returns dLoss/dScore for LogisticLoss.
func LogisticLossGrad(score float32, y float32) float32 {
	return -y * Sigmoid(-y*score)
}

// ---- ComplEx ---------------------------------------------------------------

// ComplEx is the complex bilinear model of Trouillon et al. (2016). Each
// embedding row stores [Re(0..Dim) | Im(0..Dim)].
type ComplEx struct{ dim int }

// NewComplEx returns a ComplEx model with the given complex dimension.
func NewComplEx(dim int) *ComplEx {
	if dim <= 0 {
		panic("model: non-positive dimension")
	}
	return &ComplEx{dim: dim}
}

// Name implements Model.
func (m *ComplEx) Name() string { return "complex" }

// Dim implements Model.
func (m *ComplEx) Dim() int { return m.dim }

// Width implements Model: real and imaginary halves.
func (m *ComplEx) Width() int { return 2 * m.dim }

// Score implements the ComplEx scoring function
//
//	phi(h,r,t) = <Re r, Re h, Re t> + <Re r, Im h, Im t>
//	           + <Im r, Re h, Im t> - <Im r, Im h, Re t>
func (m *ComplEx) Score(p *Params, t kg.Triple) float32 { return scoreVia(m, p, t) }

// ScoreRows implements Model over explicit rows.
//
//kgelint:hotpath
func (m *ComplEx) ScoreRows(h, r, tt []float32) float32 {
	d := m.dim
	hr, hi := h[:d], h[d:]
	rr, ri := r[:d], r[d:]
	tr, ti := tt[:d], tt[d:]
	return tensor.Dot3(rr, hr, tr) + tensor.Dot3(rr, hi, ti) +
		tensor.Dot3(ri, hr, ti) - tensor.Dot3(ri, hi, tr)
}

// AccumulateScoreGrad implements Model with the closed-form partials of the
// ComplEx score.
func (m *ComplEx) AccumulateScoreGrad(p *Params, t kg.Triple, coef float32, gh, gr, gt []float32) {
	gradVia(m, p, t, coef, gh, gr, gt)
}

// AccumulateScoreGradRows implements Model over explicit rows.
//
//kgelint:hotpath
func (m *ComplEx) AccumulateScoreGradRows(h, r, tt []float32, coef float32, gh, gr, gt []float32) {
	d := m.dim
	hr, hi := h[:d], h[d:]
	rr, ri := r[:d], r[d:]
	tr, ti := tt[:d], tt[d:]
	ghr, ghi := gh[:d], gh[d:]
	grr, gri := gr[:d], gr[d:]
	gtr, gti := gt[:d], gt[d:]
	for i := 0; i < d; i++ {
		// d/d Re(h) = Re(r)Re(t) + Im(r)Im(t)
		ghr[i] += coef * (rr[i]*tr[i] + ri[i]*ti[i])
		// d/d Im(h) = Re(r)Im(t) - Im(r)Re(t)
		ghi[i] += coef * (rr[i]*ti[i] - ri[i]*tr[i])
		// d/d Re(r) = Re(h)Re(t) + Im(h)Im(t)
		grr[i] += coef * (hr[i]*tr[i] + hi[i]*ti[i])
		// d/d Im(r) = Re(h)Im(t) - Im(h)Re(t)
		gri[i] += coef * (hr[i]*ti[i] - hi[i]*tr[i])
		// d/d Re(t) = Re(h)Re(r) - Im(h)Im(r)
		gtr[i] += coef * (hr[i]*rr[i] - hi[i]*ri[i])
		// d/d Im(t) = Im(h)Re(r) + Re(h)Im(r)
		gti[i] += coef * (hi[i]*rr[i] + hr[i]*ri[i])
	}
}

// ScoreFlops implements Model.
func (m *ComplEx) ScoreFlops() float64 { return float64(12 * m.dim) }

// GradFlops implements Model.
func (m *ComplEx) GradFlops() float64 { return float64(30 * m.dim) }

// ---- DistMult --------------------------------------------------------------

// DistMult is the real bilinear-diagonal model (the real restriction of
// ComplEx): phi = <h, r, t>.
type DistMult struct{ dim int }

// NewDistMult returns a DistMult model.
func NewDistMult(dim int) *DistMult {
	if dim <= 0 {
		panic("model: non-positive dimension")
	}
	return &DistMult{dim: dim}
}

// Name implements Model.
func (m *DistMult) Name() string { return "distmult" }

// Dim implements Model.
func (m *DistMult) Dim() int { return m.dim }

// Width implements Model.
func (m *DistMult) Width() int { return m.dim }

// Score implements Model.
func (m *DistMult) Score(p *Params, t kg.Triple) float32 { return scoreVia(m, p, t) }

// ScoreRows implements Model over explicit rows.
//
//kgelint:hotpath
func (m *DistMult) ScoreRows(h, r, t []float32) float32 {
	return tensor.Dot3(h, r, t)
}

// AccumulateScoreGrad implements Model.
func (m *DistMult) AccumulateScoreGrad(p *Params, t kg.Triple, coef float32, gh, gr, gt []float32) {
	gradVia(m, p, t, coef, gh, gr, gt)
}

// AccumulateScoreGradRows implements Model over explicit rows.
//
//kgelint:hotpath
func (m *DistMult) AccumulateScoreGradRows(h, r, tt []float32, coef float32, gh, gr, gt []float32) {
	tensor.AxpyMul(coef, r, tt, gh)
	tensor.AxpyMul(coef, h, tt, gr)
	tensor.AxpyMul(coef, h, r, gt)
}

// ScoreFlops implements Model.
func (m *DistMult) ScoreFlops() float64 { return float64(3 * m.dim) }

// GradFlops implements Model.
func (m *DistMult) GradFlops() float64 { return float64(9 * m.dim) }

// ---- TransE ----------------------------------------------------------------

// TransE scores by translation distance. To fit the logistic-loss training
// loop shared by all models, the score is the negated squared L2 distance
// phi = -||h + r - t||^2; higher is still more plausible.
type TransE struct{ dim int }

// NewTransE returns a TransE model.
func NewTransE(dim int) *TransE {
	if dim <= 0 {
		panic("model: non-positive dimension")
	}
	return &TransE{dim: dim}
}

// Name implements Model.
func (m *TransE) Name() string { return "transe" }

// Dim implements Model.
func (m *TransE) Dim() int { return m.dim }

// Width implements Model.
func (m *TransE) Width() int { return m.dim }

// Score implements Model.
func (m *TransE) Score(p *Params, t kg.Triple) float32 { return scoreVia(m, p, t) }

// ScoreRows implements Model over explicit rows.
//
//kgelint:hotpath
func (m *TransE) ScoreRows(h, r, tt []float32) float32 {
	var s float64
	for i := range h {
		d := float64(h[i] + r[i] - tt[i])
		s += d * d
	}
	return float32(-s)
}

// AccumulateScoreGrad implements Model: d(phi)/dh = -2(h+r-t), etc.
func (m *TransE) AccumulateScoreGrad(p *Params, t kg.Triple, coef float32, gh, gr, gt []float32) {
	gradVia(m, p, t, coef, gh, gr, gt)
}

// AccumulateScoreGradRows implements Model over explicit rows.
//
//kgelint:hotpath
func (m *TransE) AccumulateScoreGradRows(h, r, tt []float32, coef float32, gh, gr, gt []float32) {
	for i := range h {
		diff := h[i] + r[i] - tt[i]
		g := -2 * coef * diff
		gh[i] += g
		gr[i] += g
		gt[i] -= g
	}
}

// ScoreFlops implements Model.
func (m *TransE) ScoreFlops() float64 { return float64(4 * m.dim) }

// GradFlops implements Model.
func (m *TransE) GradFlops() float64 { return float64(8 * m.dim) }
