package model

import (
	"math"
	"testing"

	"kgedist/internal/kg"
	"kgedist/internal/xrand"
)

func testParams(m Model, ne, nr int, seed uint64) *Params {
	p := NewParams(m, ne, nr)
	p.Init(m, xrand.New(seed))
	return p
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"complex", "distmult", "transe"} {
		m := New(name, 8)
		if m.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, m.Name())
		}
		if m.Dim() != 8 {
			t.Fatalf("Dim = %d", m.Dim())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown model")
		}
	}()
	New("nope", 8)
}

func TestWidths(t *testing.T) {
	if NewComplEx(8).Width() != 16 {
		t.Fatal("ComplEx width should be 2*dim")
	}
	if NewDistMult(8).Width() != 8 || NewTransE(8).Width() != 8 {
		t.Fatal("real model width should be dim")
	}
}

func TestNonPositiveDimPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewComplEx(0) },
		func() { NewDistMult(-1) },
		func() { NewTransE(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestComplExScoreHandComputed(t *testing.T) {
	// dim=1: score = Re(r)Re(h)Re(t) + Re(r)Im(h)Im(t) + Im(r)Re(h)Im(t) - Im(r)Im(h)Re(t)
	m := NewComplEx(1)
	p := NewParams(m, 2, 1)
	// h = 2 + 3i, r = 5 + 7i, t = 11 + 13i
	copy(p.Entity.Row(0), []float32{2, 3})
	copy(p.Entity.Row(1), []float32{11, 13})
	copy(p.Relation.Row(0), []float32{5, 7})
	got := m.Score(p, kg.Triple{H: 0, R: 0, T: 1})
	want := float32(5*2*11 + 5*3*13 + 7*2*13 - 7*3*11)
	if got != want {
		t.Fatalf("score = %v, want %v", got, want)
	}
}

func TestDistMultScoreHandComputed(t *testing.T) {
	m := NewDistMult(2)
	p := NewParams(m, 2, 1)
	copy(p.Entity.Row(0), []float32{1, 2})
	copy(p.Entity.Row(1), []float32{3, 4})
	copy(p.Relation.Row(0), []float32{5, 6})
	got := m.Score(p, kg.Triple{H: 0, R: 0, T: 1})
	if got != 1*5*3+2*6*4 {
		t.Fatalf("score = %v", got)
	}
}

func TestTransEScoreHandComputed(t *testing.T) {
	m := NewTransE(2)
	p := NewParams(m, 2, 1)
	copy(p.Entity.Row(0), []float32{1, 2})
	copy(p.Entity.Row(1), []float32{2, 1})
	copy(p.Relation.Row(0), []float32{1, 1})
	// h + r - t = (0, 2); phi = -4
	got := m.Score(p, kg.Triple{H: 0, R: 0, T: 1})
	if got != -4 {
		t.Fatalf("score = %v", got)
	}
}

// numericalGrad estimates dScore/dParams[row][col] by central differences.
func numericalGrad(m Model, p *Params, tr kg.Triple, mat string, row, col int) float64 {
	const eps = 1e-3
	var target []float32
	if mat == "entity" {
		target = p.Entity.Row(row)
	} else {
		target = p.Relation.Row(row)
	}
	orig := target[col]
	target[col] = orig + eps
	plus := float64(m.Score(p, tr))
	target[col] = orig - eps
	minus := float64(m.Score(p, tr))
	target[col] = orig
	return (plus - minus) / (2 * eps)
}

func TestGradientsMatchNumerical(t *testing.T) {
	for _, name := range []string{"complex", "distmult", "transe"} {
		m := New(name, 5)
		p := testParams(m, 4, 3, 42)
		tr := kg.Triple{H: 1, R: 2, T: 3}
		w := m.Width()
		gh := make([]float32, w)
		gr := make([]float32, w)
		gt := make([]float32, w)
		m.AccumulateScoreGrad(p, tr, 1.0, gh, gr, gt)
		for c := 0; c < w; c++ {
			if want := numericalGrad(m, p, tr, "entity", 1, c); math.Abs(float64(gh[c])-want) > 2e-2 {
				t.Fatalf("%s: dScore/dH[%d] = %v, numerical %v", name, c, gh[c], want)
			}
			if want := numericalGrad(m, p, tr, "relation", 2, c); math.Abs(float64(gr[c])-want) > 2e-2 {
				t.Fatalf("%s: dScore/dR[%d] = %v, numerical %v", name, c, gr[c], want)
			}
			if want := numericalGrad(m, p, tr, "entity", 3, c); math.Abs(float64(gt[c])-want) > 2e-2 {
				t.Fatalf("%s: dScore/dT[%d] = %v, numerical %v", name, c, gt[c], want)
			}
		}
	}
}

func TestGradCoefScalesLinearly(t *testing.T) {
	m := NewComplEx(4)
	p := testParams(m, 3, 2, 7)
	tr := kg.Triple{H: 0, R: 1, T: 2}
	w := m.Width()
	g1 := make([]float32, 3*w)
	g2 := make([]float32, 3*w)
	m.AccumulateScoreGrad(p, tr, 1, g1[:w], g1[w:2*w], g1[2*w:])
	m.AccumulateScoreGrad(p, tr, -2.5, g2[:w], g2[w:2*w], g2[2*w:])
	for i := range g1 {
		if math.Abs(float64(g2[i]+2.5*g1[i])) > 1e-5 {
			t.Fatalf("coef scaling broken at %d: %v vs %v", i, g2[i], -2.5*g1[i])
		}
	}
}

func TestGradAccumulates(t *testing.T) {
	m := NewDistMult(3)
	p := testParams(m, 3, 2, 9)
	tr := kg.Triple{H: 0, R: 0, T: 1}
	w := m.Width()
	gh := make([]float32, w)
	gr := make([]float32, w)
	gt := make([]float32, w)
	m.AccumulateScoreGrad(p, tr, 1, gh, gr, gt)
	snapshot := append([]float32(nil), gh...)
	m.AccumulateScoreGrad(p, tr, 1, gh, gr, gt)
	for i := range gh {
		if math.Abs(float64(gh[i]-2*snapshot[i])) > 1e-6 {
			t.Fatal("gradient does not accumulate")
		}
	}
}

func TestLogisticLoss(t *testing.T) {
	// Loss at score 0 is log 2 regardless of label.
	if got := LogisticLoss(0, 1); math.Abs(float64(got)-math.Log(2)) > 1e-6 {
		t.Fatalf("loss(0,+1) = %v", got)
	}
	if got := LogisticLoss(0, -1); math.Abs(float64(got)-math.Log(2)) > 1e-6 {
		t.Fatalf("loss(0,-1) = %v", got)
	}
	// Correctly classified with margin: loss near 0.
	if got := LogisticLoss(10, 1); got > 1e-3 {
		t.Fatalf("loss(10,+1) = %v", got)
	}
	if got := LogisticLoss(-10, -1); got > 1e-3 {
		t.Fatalf("loss(-10,-1) = %v", got)
	}
	// Badly misclassified: loss ~ |score|.
	if got := LogisticLoss(-40, 1); math.Abs(float64(got)-40) > 1e-3 {
		t.Fatalf("loss(-40,+1) = %v", got)
	}
}

func TestLogisticLossGradMatchesNumerical(t *testing.T) {
	const eps = 1e-3
	for _, y := range []float32{1, -1} {
		for _, s := range []float32{-2, -0.5, 0, 0.7, 3} {
			got := LogisticLossGrad(s, y)
			want := (LogisticLoss(s+eps, y) - LogisticLoss(s-eps, y)) / (2 * eps)
			if math.Abs(float64(got-want)) > 1e-3 {
				t.Fatalf("grad(%v,%v) = %v, numerical %v", s, y, got, want)
			}
		}
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(100); got < 0.999 {
		t.Fatalf("Sigmoid(100) = %v", got)
	}
	if got := Sigmoid(-100); got > 0.001 {
		t.Fatalf("Sigmoid(-100) = %v", got)
	}
}

func TestParamsInitStatistics(t *testing.T) {
	m := NewComplEx(16)
	p := NewParams(m, 100, 10)
	p.Init(m, xrand.New(3))
	var sum float64
	for _, v := range p.Entity.Data {
		sum += float64(v)
	}
	mean := sum / float64(len(p.Entity.Data))
	if math.Abs(mean) > 0.01 {
		t.Fatalf("init mean %v too far from 0", mean)
	}
	if p.Entity.NonZeroRows() != 100 {
		t.Fatal("init left zero rows")
	}
}

func TestParamsClone(t *testing.T) {
	m := NewDistMult(4)
	p := testParams(m, 5, 3, 1)
	c := p.Clone()
	c.Entity.Row(0)[0] += 1
	if p.Entity.Row(0)[0] == c.Entity.Row(0)[0] {
		t.Fatal("Clone shares storage")
	}
}

func TestNegSamplerCorrupt(t *testing.T) {
	rng := xrand.New(5)
	s := NewNegSampler(50, rng)
	pos := kg.Triple{H: 3, R: 1, T: 7}
	headChanged, tailChanged := 0, 0
	for i := 0; i < 1000; i++ {
		neg := s.Corrupt(pos)
		if neg.R != pos.R {
			t.Fatal("relation corrupted")
		}
		switch {
		case neg.H != pos.H && neg.T == pos.T:
			headChanged++
			if neg.H == pos.H {
				t.Fatal("head replacement equals original")
			}
		case neg.T != pos.T && neg.H == pos.H:
			tailChanged++
		default:
			t.Fatalf("corruption changed both or neither: %+v", neg)
		}
	}
	if headChanged < 400 || tailChanged < 400 {
		t.Fatalf("corruption side imbalance: %d/%d", headChanged, tailChanged)
	}
}

func TestNegSamplerPanicsTinyUniverse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNegSampler(1, xrand.New(1))
}

func TestCorruptN(t *testing.T) {
	s := NewNegSampler(20, xrand.New(8))
	pos := kg.Triple{H: 1, R: 0, T: 2}
	buf := make([]kg.Triple, 0, 8)
	got := s.CorruptN(pos, 5, buf)
	if len(got) != 5 {
		t.Fatalf("CorruptN len %d", len(got))
	}
	for _, n := range got {
		if n == pos {
			t.Fatal("CorruptN returned the positive")
		}
	}
}

func TestSelectHardestPicksHighestScore(t *testing.T) {
	m := NewDistMult(4)
	p := testParams(m, 30, 3, 11)
	s := NewNegSampler(30, xrand.New(12))
	pos := kg.Triple{H: 1, R: 1, T: 2}
	neg, extra := SelectHardest(m, p, s, pos, 10, nil)
	if extra != 10 {
		t.Fatalf("extra forward passes = %d", extra)
	}
	// Re-draw the same candidates via a fresh sampler with same seed and
	// verify none scores higher.
	s2 := NewNegSampler(30, xrand.New(12))
	cands := s2.CorruptN(pos, 10, nil)
	best := m.Score(p, neg)
	for _, c := range cands {
		if m.Score(p, c) > best {
			t.Fatalf("SelectHardest missed a harder negative")
		}
	}
}

func TestSelectHardestSingleSample(t *testing.T) {
	m := NewDistMult(2)
	p := testParams(m, 10, 2, 1)
	s := NewNegSampler(10, xrand.New(2))
	pos := kg.Triple{H: 0, R: 0, T: 1}
	neg, extra := SelectHardest(m, p, s, pos, 1, nil)
	if extra != 0 {
		t.Fatalf("n=1 should cost no extra passes, got %d", extra)
	}
	if neg == pos {
		t.Fatal("negative equals positive")
	}
}

func TestFlopsPositive(t *testing.T) {
	for _, name := range []string{"complex", "distmult", "transe"} {
		m := New(name, 8)
		if m.ScoreFlops() <= 0 || m.GradFlops() <= 0 {
			t.Fatalf("%s: non-positive flop estimates", name)
		}
	}
}

func BenchmarkComplExScore(b *testing.B) {
	m := NewComplEx(64)
	p := testParams(m, 1000, 100, 1)
	tr := kg.Triple{H: 5, R: 7, T: 11}
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink = m.Score(p, tr)
	}
	_ = sink
}

func BenchmarkComplExGrad(b *testing.B) {
	m := NewComplEx(64)
	p := testParams(m, 1000, 100, 1)
	tr := kg.Triple{H: 5, R: 7, T: 11}
	w := m.Width()
	gh := make([]float32, w)
	gr := make([]float32, w)
	gt := make([]float32, w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AccumulateScoreGrad(p, tr, 0.1, gh, gr, gt)
	}
}

func TestDegreeSamplerBiasedTowardPopular(t *testing.T) {
	// Entity 0 appears in every triple; entity 1..9 rarely. Corruptions
	// must hit entity 0 far more often than any single tail entity.
	d := &kg.Dataset{NumEntities: 10, NumRelations: 1}
	for i := int32(1); i < 10; i++ {
		d.Train = append(d.Train, kg.Triple{H: 0, R: 0, T: i})
	}
	s := NewDegreeSampler(d, xrand.New(3))
	counts := make([]int, 10)
	pos := kg.Triple{H: 5, R: 0, T: 6}
	for i := 0; i < 5000; i++ {
		n := s.Corrupt(pos)
		if n.H != pos.H {
			counts[n.H]++
		} else {
			counts[n.T]++
		}
	}
	for e := 1; e < 10; e++ {
		if e == 5 || e == 6 {
			continue // the positive's own slots are excluded sometimes
		}
		if counts[0] < 3*counts[e] {
			t.Fatalf("popular entity drawn %d times vs entity %d's %d", counts[0], e, counts[e])
		}
	}
}

func TestDegreeSamplerCorruptN(t *testing.T) {
	d := kg.Generate(kg.GenConfig{Entities: 50, Relations: 4, Triples: 500, Seed: 5})
	s := NewDegreeSampler(d, xrand.New(7))
	pos := d.Train[0]
	negs := s.CorruptN(pos, 6, nil)
	if len(negs) != 6 {
		t.Fatalf("CorruptN returned %d", len(negs))
	}
	for _, n := range negs {
		if n == pos || n.R != pos.R {
			t.Fatalf("bad corruption %+v", n)
		}
	}
}

func TestDegreeSamplerPanicsTinyUniverse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDegreeSampler(&kg.Dataset{NumEntities: 1, NumRelations: 1}, xrand.New(1))
}
