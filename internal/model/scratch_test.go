package model

import (
	"testing"

	"kgedist/internal/xrand"
)

func TestScratchViewsDisjoint(t *testing.T) {
	s := NewScratch(8)
	views := [][]float32{s.H, s.R, s.T, s.GH, s.GR, s.GT}
	for i, v := range views {
		if len(v) != 8 {
			t.Fatalf("view %d has len %d, want 8", i, len(v))
		}
		for j := range v {
			v[j] = float32(i)
		}
	}
	for i, v := range views {
		for j, x := range v {
			if x != float32(i) {
				t.Fatalf("view %d[%d] = %v — views overlap", i, j, x)
			}
		}
	}
	if s.Width() != 8 {
		t.Fatalf("Width() = %d, want 8", s.Width())
	}
}

func TestScratchZeroGrads(t *testing.T) {
	s := NewScratch(4)
	for i := range s.GH {
		s.GH[i], s.GR[i], s.GT[i] = 1, 2, 3
		s.H[i] = 9
	}
	s.ZeroGrads()
	for i := range s.GH {
		if s.GH[i] != 0 || s.GR[i] != 0 || s.GT[i] != 0 {
			t.Fatal("ZeroGrads left gradient values")
		}
		if s.H[i] != 9 {
			t.Fatal("ZeroGrads touched the embedding snapshots")
		}
	}
}

func TestScratchScoreMatchesModel(t *testing.T) {
	for _, name := range []string{"complex", "distmult", "transe"} {
		m := New(name, 8)
		p := NewParams(m, 20, 4)
		p.Init(m, xrand.New(3))
		s := NewScratch(m.Width())
		got := s.Score(m, p, 5, 2, 11)
		want := m.ScoreRows(p.Entity.Row(5), p.Relation.Row(2), p.Entity.Row(11))
		if got != want {
			t.Errorf("%s: Scratch.Score = %v, model = %v", name, got, want)
		}
	}
}

// The score and gradient sweep through a warm Scratch must not allocate —
// this is the per-triple inner loop of hogwild and serve (ISSUE 4
// acceptance criterion, asserted with testing.AllocsPerRun).
func TestScratchSweepAllocFree(t *testing.T) {
	for _, name := range []string{"complex", "distmult", "transe", "rotate", "transh", "simple"} {
		m := New(name, 16)
		p := NewParams(m, 50, 6)
		p.Init(m, xrand.New(7))
		s := NewScratch(m.Width())
		allocs := testing.AllocsPerRun(100, func() {
			sc := s.Score(m, p, 3, 1, 40)
			s.ZeroGrads()
			m.AccumulateScoreGradRows(s.H, s.R, s.T, sc, s.GH, s.GR, s.GT)
		})
		if allocs != 0 {
			t.Errorf("%s: score+grad sweep allocates %.1f allocs/op, want 0", name, allocs)
		}
	}
}
