package model

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// validCheckpointBytes builds a small real checkpoint in memory so the
// fuzzer starts from the live format and mutates inward.
func validCheckpointBytes(tb testing.TB, name string, dim, entities, relations int) []byte {
	tb.Helper()
	dir := tb.TempDir()
	path := filepath.Join(dir, "seed.kge2")
	m := New(name, dim)
	p := NewParams(m, entities, relations)
	for i := range p.Entity.Data {
		p.Entity.Data[i] = float32(i%7) * 0.25
	}
	for i := range p.Relation.Data {
		p.Relation.Data[i] = -float32(i%5) * 0.5
	}
	if err := SaveCheckpoint(path, m, p); err != nil {
		tb.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return buf
}

// FuzzReadCheckpoint throws arbitrary bytes at both checkpoint readers.
// The contract under test: corrupt input NEVER panics and NEVER loads —
// it yields an error (integrity failures wrapping ErrCorruptCheckpoint),
// and the header-only reader and the full loader always agree on whether
// a file is acceptable.
func FuzzReadCheckpoint(f *testing.F) {
	seed := validCheckpointBytes(f, "distmult", 4, 6, 3)
	f.Add(seed)
	// Flip the CRC footer.
	bad := append([]byte(nil), seed...)
	bad[len(bad)-1] ^= 0xff
	f.Add(bad)
	// Truncations at structurally interesting offsets.
	f.Add(seed[:3])
	f.Add(seed[:len("KGE2")+4])
	f.Add(seed[:len(seed)/2])
	// Legacy magic and wrong magic.
	f.Add(append([]byte("KGE1"), seed[4:]...))
	f.Add([]byte("not a checkpoint at all"))
	// Huge declared dimensions: name "distmult" (len 8), then dim/entities/
	// relations/width all 0xFFFFFFFF — must be rejected without allocating.
	huge := []byte("KGE2")
	huge = binary.LittleEndian.AppendUint32(huge, 8)
	huge = append(huge, []byte("distmult")...)
	for i := 0; i < 4; i++ {
		huge = binary.LittleEndian.AppendUint32(huge, 0xFFFFFFFF)
	}
	huge = append(huge, 0, 0, 0, 0)
	f.Add(huge)
	// Unknown model name with otherwise plausible geometry.
	unk := []byte("KGE2")
	unk = binary.LittleEndian.AppendUint32(unk, 4)
	unk = append(unk, []byte("evil")...)
	for _, v := range []uint32{4, 2, 2, 4} {
		unk = binary.LittleEndian.AppendUint32(unk, v)
	}
	unk = append(unk, bytes.Repeat([]byte{0}, 4*4*4+4)...)
	f.Add(unk)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.kge2")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		m, p, loadErr := LoadCheckpoint(path)
		info, infoErr := ReadCheckpointInfo(path)
		if (loadErr == nil) != (infoErr == nil) {
			t.Fatalf("readers disagree: LoadCheckpoint err=%v, ReadCheckpointInfo err=%v", loadErr, infoErr)
		}
		if loadErr != nil {
			// Exercise the error path's classification: a checksum/shape
			// failure must be distinguishable from an os error.
			_ = errors.Is(loadErr, ErrCorruptCheckpoint)
			return
		}
		// A load that succeeded must be self-consistent with the header.
		if m.Name() != info.Model || m.Dim() != info.Dim || m.Width() != info.Width {
			t.Fatalf("loaded model %s/%d/%d disagrees with header %s", m.Name(), m.Dim(), m.Width(), info)
		}
		if p.Entity.Rows != info.Entities || p.Relation.Rows != info.Relations {
			t.Fatalf("loaded params %dx%d disagree with header %s", p.Entity.Rows, p.Relation.Rows, info)
		}
	})
}
