package model

import (
	"math"
	"testing"
	"testing/quick"

	"kgedist/internal/kg"
	"kgedist/internal/xrand"
)

// Structural invariants of the scoring functions, checked with testing/quick
// over random parameters.

// randParamsFor builds small random parameters for property tests.
func randParamsFor(m Model, seed uint64) *Params {
	p := NewParams(m, 6, 4)
	p.Init(m, xrand.New(seed))
	return p
}

// Property: DistMult is symmetric in head and tail.
func TestQuickDistMultSymmetry(t *testing.T) {
	m := NewDistMult(5)
	f := func(seed uint64, h, r, tt uint8) bool {
		p := randParamsFor(m, seed)
		tr := kg.Triple{H: int32(h % 6), R: int32(r % 4), T: int32(tt % 6)}
		rev := kg.Triple{H: tr.T, R: tr.R, T: tr.H}
		// (h*r)*t and (t*r)*h round differently; symmetric up to ulps.
		return math.Abs(float64(m.Score(p, tr)-m.Score(p, rev))) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: TransE's score is invariant under translating head and tail by
// the same vector.
func TestQuickTransETranslationInvariance(t *testing.T) {
	m := NewTransE(4)
	f := func(seed uint64, deltaRaw int8) bool {
		p := randParamsFor(m, seed)
		tr := kg.Triple{H: 0, R: 0, T: 1}
		before := m.Score(p, tr)
		delta := float32(deltaRaw) / 64
		for i := 0; i < m.Width(); i++ {
			p.Entity.Row(0)[i] += delta
			p.Entity.Row(1)[i] += delta
		}
		after := m.Score(p, tr)
		return math.Abs(float64(after-before)) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: distance-based models (TransE, RotatE, TransH) never score
// above zero.
func TestQuickDistanceModelsNonPositive(t *testing.T) {
	models := []Model{NewTransE(4), NewRotatE(4), NewTransH(4)}
	f := func(seed uint64, h, r, tt uint8, mi uint8) bool {
		m := models[int(mi)%len(models)]
		p := randParamsFor(m, seed)
		tr := kg.Triple{H: int32(h % 6), R: int32(r % 4), T: int32(tt % 6)}
		return m.Score(p, tr) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: for every model, the analytic gradient's directional derivative
// matches a finite-difference probe along a random coordinate.
func TestQuickGradientDirectionalDerivative(t *testing.T) {
	names := []string{"complex", "distmult", "transe", "rotate", "transh", "simple"}
	f := func(seed uint64, ni uint8, col uint8) bool {
		m := New(names[int(ni)%len(names)], 3)
		p := randParamsFor(m, seed)
		tr := kg.Triple{H: 1, R: 2, T: 3}
		w := m.Width()
		c := int(col) % w
		gh := make([]float32, w)
		gr := make([]float32, w)
		gt := make([]float32, w)
		m.AccumulateScoreGrad(p, tr, 1, gh, gr, gt)
		num := numericalGrad(m, p, tr, "entity", 1, c)
		return math.Abs(float64(gh[c])-num) < 5e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: LogisticLoss is non-negative, and its two labels are mirror
// images: loss(s, +1) == loss(-s, -1).
func TestQuickLogisticLossMirror(t *testing.T) {
	f := func(raw int16) bool {
		s := float32(raw) / 1024
		lp := LogisticLoss(s, 1)
		ln := LogisticLoss(-s, -1)
		if lp < 0 || ln < 0 {
			return false
		}
		return math.Abs(float64(lp-ln)) < 1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SelectHardest returns a triple differing from the positive in
// exactly one entity slot and never in the relation.
func TestQuickSelectHardestShape(t *testing.T) {
	m := NewDistMult(4)
	f := func(seed uint64, n uint8) bool {
		p := randParamsFor(m, seed)
		s := NewNegSampler(6, xrand.New(seed+1))
		pos := kg.Triple{H: 0, R: 1, T: 2}
		neg, _ := SelectHardest(m, p, s, pos, int(n%8)+1, nil)
		if neg.R != pos.R {
			return false
		}
		headChanged := neg.H != pos.H
		tailChanged := neg.T != pos.T
		return headChanged != tailChanged // exactly one side corrupted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
