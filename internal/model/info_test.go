package model

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"kgedist/internal/xrand"
)

func writeTestCheckpoint(t *testing.T, name string, dim, entities, relations int) string {
	t.Helper()
	m := New(name, dim)
	p := NewParams(m, entities, relations)
	p.Init(m, xrand.New(7))
	path := filepath.Join(t.TempDir(), "info.kge")
	if err := SaveCheckpoint(path, m, p); err != nil {
		t.Fatalf("save: %v", err)
	}
	return path
}

func TestReadCheckpointInfo(t *testing.T) {
	path := writeTestCheckpoint(t, "complex", 6, 17, 5)
	ci, err := ReadCheckpointInfo(path)
	if err != nil {
		t.Fatalf("ReadCheckpointInfo: %v", err)
	}
	if ci.Model != "complex" || ci.Dim != 6 || ci.Width != 12 {
		t.Fatalf("model header wrong: %+v", ci)
	}
	if ci.Entities != 17 || ci.Relations != 5 {
		t.Fatalf("shape wrong: %+v", ci)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if ci.Size != fi.Size() {
		t.Fatalf("size %d, file is %d", ci.Size, fi.Size())
	}
	// The header must agree with what a full load reconstructs.
	m, p, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if m.Name() != ci.Model || m.Dim() != ci.Dim || m.Width() != ci.Width {
		t.Fatalf("info %+v disagrees with loaded model %s/%d", ci, m.Name(), m.Dim())
	}
	if p.Entity.Rows != ci.Entities || p.Relation.Rows != ci.Relations {
		t.Fatalf("info %+v disagrees with loaded shape %d/%d", ci, p.Entity.Rows, p.Relation.Rows)
	}
}

func TestReadCheckpointInfoIdentityTracksContent(t *testing.T) {
	a := writeTestCheckpoint(t, "distmult", 4, 9, 3)
	ciA, err := ReadCheckpointInfo(a)
	if err != nil {
		t.Fatalf("info a: %v", err)
	}
	// Same shape, different parameter values: the CRC identity must differ.
	m := New("distmult", 4)
	p := NewParams(m, 9, 3)
	p.Init(m, xrand.New(99))
	b := filepath.Join(t.TempDir(), "other.kge")
	if err := SaveCheckpoint(b, m, p); err != nil {
		t.Fatalf("save b: %v", err)
	}
	ciB, err := ReadCheckpointInfo(b)
	if err != nil {
		t.Fatalf("info b: %v", err)
	}
	if ciA.CRC == ciB.CRC {
		t.Fatalf("distinct checkpoints share CRC identity %08x", ciA.CRC)
	}
}

func TestReadCheckpointInfoRejectsCorruption(t *testing.T) {
	path := writeTestCheckpoint(t, "complex", 5, 11, 4)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}

	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[len(bad)/2] ^= 0x40
		p := filepath.Join(t.TempDir(), "bad.kge")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := ReadCheckpointInfo(p); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("want ErrCorruptCheckpoint, got %v", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "trunc.kge")
		if err := os.WriteFile(p, raw[:len(raw)-9], 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := ReadCheckpointInfo(p); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("want ErrCorruptCheckpoint, got %v", err)
		}
	})

	t.Run("not a checkpoint", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "junk.kge")
		if err := os.WriteFile(p, []byte("definitely not a checkpoint"), 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := ReadCheckpointInfo(p); err == nil {
			t.Fatal("junk file accepted")
		}
	})

	t.Run("missing file", func(t *testing.T) {
		if _, err := ReadCheckpointInfo(filepath.Join(t.TempDir(), "nope.kge")); err == nil {
			t.Fatal("missing file accepted")
		} else if errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("missing file misreported as corruption: %v", err)
		}
	})
}
