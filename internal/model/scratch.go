package model

import "kgedist/internal/tensor"

// Scratch is a per-worker bundle of the six Width()-long rows every scoring
// and gradient sweep needs: thread-local snapshots of the head, relation
// and tail embeddings (H, R, T) and the matching gradient accumulators
// (GH, GR, GT). Hot loops — hogwild workers, serve sweeps, evaluation —
// allocate one Scratch per worker up front and reuse it for every triple,
// keeping the inner loop allocation-free.
//
// A Scratch is exclusively owned by one goroutine; nothing in it may be
// shared or retained by a callee. All six slices are valid for the life of
// the Scratch.
type Scratch struct {
	H, R, T    []float32 // embedding row snapshots, Width floats each
	GH, GR, GT []float32 // gradient accumulators, Width floats each
}

// NewScratch returns a Scratch for rows of the given width (floats per
// row), all slices zeroed.
func NewScratch(width int) *Scratch {
	if width <= 0 {
		panic("model: non-positive scratch width")
	}
	// One backing allocation, six views: keeps a worker's whole scratch on
	// as few cache lines as possible.
	backing := make([]float32, 6*width)
	return &Scratch{
		H:  backing[0*width : 1*width],
		R:  backing[1*width : 2*width],
		T:  backing[2*width : 3*width],
		GH: backing[3*width : 4*width],
		GR: backing[4*width : 5*width],
		GT: backing[5*width : 6*width],
	}
}

// Width returns the row width the Scratch was built for.
func (s *Scratch) Width() int { return len(s.H) }

// ZeroGrads clears the three gradient accumulators, leaving the embedding
// snapshots untouched. Call it before each AccumulateScoreGradRows group.
func (s *Scratch) ZeroGrads() {
	tensor.Zero(s.GH)
	tensor.Zero(s.GR)
	tensor.Zero(s.GT)
}

// Score loads the triple's rows from p into the snapshot slices and scores
// them — the single-threaded convenience path; concurrent readers of a
// shared store must load snapshots themselves (e.g. with AtomicRowLoad)
// before calling m.ScoreRows(s.H, s.R, s.T).
func (s *Scratch) Score(m Model, p *Params, h, r, t int32) float32 {
	copy(s.H, p.Entity.Row(int(h)))
	copy(s.R, p.Relation.Row(int(r)))
	copy(s.T, p.Entity.Row(int(t)))
	return m.ScoreRows(s.H, s.R, s.T)
}
