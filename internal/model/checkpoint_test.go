package model

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kgedist/internal/xrand"
)

func TestCheckpointRoundTrip(t *testing.T) {
	for _, name := range []string{"complex", "distmult"} {
		m := New(name, 6)
		p := NewParams(m, 17, 5)
		p.Init(m, xrand.New(3))
		path := filepath.Join(t.TempDir(), "ck.kge")
		if err := SaveCheckpoint(path, m, p); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		m2, p2, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if m2.Name() != name || m2.Dim() != 6 {
			t.Fatalf("%s: model header %s/%d", name, m2.Name(), m2.Dim())
		}
		if p2.Entity.Rows != 17 || p2.Relation.Rows != 5 {
			t.Fatalf("%s: shapes %d/%d", name, p2.Entity.Rows, p2.Relation.Rows)
		}
		for i := range p.Entity.Data {
			if p.Entity.Data[i] != p2.Entity.Data[i] {
				t.Fatalf("%s: entity data differs at %d", name, i)
			}
		}
		for i := range p.Relation.Data {
			if p.Relation.Data[i] != p2.Relation.Data[i] {
				t.Fatalf("%s: relation data differs at %d", name, i)
			}
		}
	}
}

func TestLoadCheckpointErrors(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LoadCheckpoint(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("NOPE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated: valid header, missing data.
	m := New("complex", 4)
	p := NewParams(m, 10, 3)
	full := filepath.Join(dir, "full")
	if err := SaveCheckpoint(full, m, p); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(trunc); err == nil {
		t.Fatal("truncated checkpoint accepted")
	} else if !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("truncated checkpoint error %v does not wrap ErrCorruptCheckpoint", err)
	}
}

func TestLoadCheckpointDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	m := New("complex", 4)
	p := NewParams(m, 10, 3)
	p.Init(m, xrand.New(7))
	path := filepath.Join(dir, "ck.kge")
	if err := SaveCheckpoint(path, m, p); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in every region of the file: header, entity data,
	// relation data, and the checksum footer itself. Each must be caught.
	for _, off := range []int{5, len(data) / 3, len(data) - 10, len(data) - 2} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		badPath := filepath.Join(dir, "bad.kge")
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := LoadCheckpoint(badPath)
		if err == nil {
			t.Fatalf("bit flip at offset %d silently loaded", off)
		}
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("bit flip at offset %d: error %v does not wrap ErrCorruptCheckpoint", off, err)
		}
	}
	// Truncation at every boundary must be caught too (never a crash, never
	// a silent load).
	for _, n := range []int{3, 7, 20, len(data) - 5, len(data) - 1} {
		badPath := filepath.Join(dir, "short.kge")
		if err := os.WriteFile(badPath, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadCheckpoint(badPath); err == nil {
			t.Fatalf("truncation to %d bytes silently loaded", n)
		}
	}
	// Trailing garbage shifts the hashed region and must also fail.
	badPath := filepath.Join(dir, "long.kge")
	if err := os.WriteFile(badPath, append(append([]byte(nil), data...), 0xAA, 0xBB), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(badPath); err == nil {
		t.Fatal("checkpoint with trailing garbage silently loaded")
	}
	// The pristine file still loads.
	if _, _, err := LoadCheckpoint(path); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
}

func TestLoadCheckpointRejectsLegacyFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.kge")
	if err := os.WriteFile(path, []byte("KGE1somebytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadCheckpoint(path)
	if err == nil {
		t.Fatal("legacy KGE1 checkpoint accepted")
	}
	if !strings.Contains(err.Error(), "legacy") {
		t.Fatalf("legacy error %v should name the format", err)
	}
}

func TestSaveCheckpointIsAtomic(t *testing.T) {
	dir := t.TempDir()
	m := New("complex", 4)
	p := NewParams(m, 10, 3)
	p.Init(m, xrand.New(7))
	path := filepath.Join(dir, "ck.kge")
	if err := SaveCheckpoint(path, m, p); err != nil {
		t.Fatal(err)
	}
	// No temporary file survives a successful save.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("stale temporary file after save: %v", err)
	}
	// A failed save (target directory vanished) must not leave a tmp file
	// behind either.
	gone := filepath.Join(dir, "nope", "ck.kge")
	if err := SaveCheckpoint(gone, m, p); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
	if _, err := os.Stat(gone + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("stale temporary file after failed save: %v", err)
	}
	// Overwriting an existing checkpoint goes through the same rename path;
	// the old file is replaced only by a complete, verifiable new one.
	p.Entity.Data[0] += 1
	if err := SaveCheckpoint(path, m, p); err != nil {
		t.Fatal(err)
	}
	_, p2, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Entity.Data[0] != p.Entity.Data[0] {
		t.Fatal("overwrite did not publish the new contents")
	}
}
