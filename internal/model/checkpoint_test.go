package model

import (
	"os"
	"path/filepath"
	"testing"

	"kgedist/internal/xrand"
)

func TestCheckpointRoundTrip(t *testing.T) {
	for _, name := range []string{"complex", "distmult"} {
		m := New(name, 6)
		p := NewParams(m, 17, 5)
		p.Init(m, xrand.New(3))
		path := filepath.Join(t.TempDir(), "ck.kge")
		if err := SaveCheckpoint(path, m, p); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		m2, p2, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if m2.Name() != name || m2.Dim() != 6 {
			t.Fatalf("%s: model header %s/%d", name, m2.Name(), m2.Dim())
		}
		if p2.Entity.Rows != 17 || p2.Relation.Rows != 5 {
			t.Fatalf("%s: shapes %d/%d", name, p2.Entity.Rows, p2.Relation.Rows)
		}
		for i := range p.Entity.Data {
			if p.Entity.Data[i] != p2.Entity.Data[i] {
				t.Fatalf("%s: entity data differs at %d", name, i)
			}
		}
		for i := range p.Relation.Data {
			if p.Relation.Data[i] != p2.Relation.Data[i] {
				t.Fatalf("%s: relation data differs at %d", name, i)
			}
		}
	}
}

func TestLoadCheckpointErrors(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LoadCheckpoint(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("NOPE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated: valid header, missing data.
	m := New("complex", 4)
	p := NewParams(m, 10, 3)
	full := filepath.Join(dir, "full")
	if err := SaveCheckpoint(full, m, p); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(trunc); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}
