package model

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// CheckpointInfo is the KGE2 header: everything a consumer can know about a
// checkpoint without materializing its weight matrices. ReadCheckpointInfo
// fills it in O(1) memory, so startup paths (kgeserve, kgeeval) can reject a
// model/dataset mismatch before committing to a multi-gigabyte load.
type CheckpointInfo struct {
	// Model is the model name stored in the header ("complex", ...).
	Model string `json:"model"`
	// Dim is the nominal embedding dimension.
	Dim int `json:"dim"`
	// Width is the number of floats per embedding row (2*Dim for ComplEx).
	Width int `json:"width"`
	// Entities and Relations are the embedding matrix row counts.
	Entities  int `json:"entities"`
	Relations int `json:"relations"`
	// Size is the checkpoint file size in bytes.
	Size int64 `json:"size_bytes"`
	// CRC is the file's CRC-32 (IEEE) footer — a stable identity for the
	// parameter snapshot, reported by kgeserve's /healthz as the loaded
	// checkpoint version.
	CRC uint32 `json:"crc32"`
}

// PayloadBytes returns the expected byte length of the two weight matrices.
func (ci CheckpointInfo) PayloadBytes() int64 {
	return 4 * int64(ci.Width) * int64(ci.Entities+ci.Relations)
}

// String renders the header compactly for logs and error messages.
func (ci CheckpointInfo) String() string {
	return fmt.Sprintf("%s dim=%d width=%d entities=%d relations=%d crc=%08x",
		ci.Model, ci.Dim, ci.Width, ci.Entities, ci.Relations, ci.CRC)
}

// ReadCheckpointInfo reads and validates the KGE2 header of the checkpoint
// at path without loading the weight matrices. The whole file is still
// streamed through the CRC-32 check (in constant memory), so a torn or
// corrupted checkpoint is rejected here exactly as LoadCheckpoint would
// reject it, and the declared shape is cross-checked against the file size.
// Corruption is reported wrapping ErrCorruptCheckpoint.
func ReadCheckpointInfo(path string) (CheckpointInfo, error) {
	var ci CheckpointInfo
	f, err := os.Open(path)
	if err != nil {
		return ci, fmt.Errorf("model: opening checkpoint: %w", err)
	}
	defer f.Close() //kgelint:ignore droppederr read-only close
	fi, err := f.Stat()
	if err != nil {
		return ci, fmt.Errorf("model: stat checkpoint: %w", err)
	}
	ci.Size = fi.Size()
	if fi.Size() < int64(len(checkpointMagic))+4 {
		return ci, fmt.Errorf("%w: %s truncated to %d bytes", ErrCorruptCheckpoint, path, fi.Size())
	}
	bodyLen := fi.Size() - 4
	crc := crc32.NewIEEE()
	r := bufio.NewReader(io.TeeReader(io.LimitReader(f, bodyLen), crc))

	truncated := func(what string, err error) error {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("%w: %s truncated in %s", ErrCorruptCheckpoint, path, what)
		}
		return fmt.Errorf("model: reading checkpoint %s: %w", what, err)
	}

	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return ci, truncated("magic", err)
	}
	switch string(magic) {
	case checkpointMagic:
	case checkpointMagicLegacy:
		return ci, fmt.Errorf("model: %s is a legacy KGE1 checkpoint (no checksum); re-save it with this version", path)
	default:
		return ci, fmt.Errorf("model: %s is not a KGE checkpoint", path)
	}
	var nameLen uint32
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return ci, truncated("header", err)
	}
	if nameLen > 64 {
		return ci, fmt.Errorf("%w: implausible model name length %d", ErrCorruptCheckpoint, nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return ci, truncated("name", err)
	}
	var dims [4]uint32
	if err := binary.Read(r, binary.LittleEndian, &dims); err != nil {
		return ci, truncated("dims", err)
	}
	ci.Model = string(nameBuf)
	ci.Dim = int(dims[0])
	ci.Entities = int(dims[1])
	ci.Relations = int(dims[2])
	ci.Width = int(dims[3])

	// The header fully determines the payload length; a mismatch means the
	// file was truncated or grew garbage, so fail before the (cheap but
	// linear) CRC sweep with a precise message.
	headerLen := int64(len(checkpointMagic)) + 4 + int64(nameLen) + 16
	if want := headerLen + ci.PayloadBytes(); want != bodyLen {
		return ci, fmt.Errorf("%w: %s declares %d payload bytes but body holds %d",
			ErrCorruptCheckpoint, path, ci.PayloadBytes(), bodyLen-headerLen)
	}
	// Stream the weight matrices through the hash without storing them.
	if _, err := io.Copy(io.Discard, r); err != nil {
		return ci, fmt.Errorf("model: reading checkpoint payload: %w", err)
	}
	var footer [4]byte
	if _, err := io.ReadFull(f, footer[:]); err != nil {
		return ci, truncated("checksum footer", err)
	}
	ci.CRC = binary.LittleEndian.Uint32(footer[:])
	if got := crc.Sum32(); got != ci.CRC {
		return ci, fmt.Errorf("%w: %s checksum mismatch (have %08x, footer says %08x)",
			ErrCorruptCheckpoint, path, got, ci.CRC)
	}
	return ci, nil
}
