package model

import (
	"kgedist/internal/kg"
	"kgedist/internal/xrand"
)

// Corrupter produces negative triples from positives; the trainer accepts
// any implementation (uniform or degree-weighted).
type Corrupter interface {
	// Corrupt returns one negative derived from pos.
	Corrupt(pos kg.Triple) kg.Triple
	// CorruptN fills dst with n corruptions, reusing its backing array.
	CorruptN(pos kg.Triple, n int, dst []kg.Triple) []kg.Triple
}

// NegSampler draws negative triples by corrupting the head or tail of a
// positive triple with a uniformly random entity (paper §3.1).
type NegSampler struct {
	numEntities int
	rng         *xrand.RNG
}

// NewNegSampler returns a sampler over the given entity universe.
func NewNegSampler(numEntities int, rng *xrand.RNG) *NegSampler {
	if numEntities < 2 {
		panic("model: negative sampling needs at least two entities")
	}
	return &NegSampler{numEntities: numEntities, rng: rng}
}

// Corrupt returns a negative triple derived from pos: with probability 1/2
// the head is replaced, otherwise the tail. The replacement differs from the
// entity it replaces.
func (s *NegSampler) Corrupt(pos kg.Triple) kg.Triple {
	neg := pos
	if s.rng.Bernoulli(0.5) {
		for {
			e := int32(s.rng.Intn(s.numEntities))
			if e != pos.H {
				neg.H = e
				break
			}
		}
	} else {
		for {
			e := int32(s.rng.Intn(s.numEntities))
			if e != pos.T {
				neg.T = e
				break
			}
		}
	}
	return neg
}

// CorruptN fills dst with n independent corruptions of pos, reusing dst's
// backing array when it has capacity.
func (s *NegSampler) CorruptN(pos kg.Triple, n int, dst []kg.Triple) []kg.Triple {
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, s.Corrupt(pos))
	}
	return dst
}

// DegreeSampler corrupts with entities drawn proportionally to their
// training-set degree (frequency): popular entities make harder, more
// plausible negatives than uniform draws. Used as an alternative corruption
// distribution alongside the paper's uniform sampler.
type DegreeSampler struct {
	cum []float64 // cumulative normalized degree weights
	rng *xrand.RNG
}

// NewDegreeSampler builds a sampler over the dataset's training degrees.
// Entities with zero degree receive a weight of one so every entity stays
// reachable.
func NewDegreeSampler(d *kg.Dataset, rng *xrand.RNG) *DegreeSampler {
	if d.NumEntities < 2 {
		panic("model: degree sampling needs at least two entities")
	}
	deg := make([]float64, d.NumEntities)
	for _, t := range d.Train {
		deg[t.H]++
		deg[t.T]++
	}
	cum := make([]float64, d.NumEntities)
	total := 0.0
	for i, w := range deg {
		if w == 0 {
			w = 1
		}
		total += w
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[len(cum)-1] = 1
	return &DegreeSampler{cum: cum, rng: rng}
}

// draw samples an entity from the degree distribution.
func (s *DegreeSampler) draw() int32 {
	u := s.rng.Float64()
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// Corrupt implements Corrupter.
func (s *DegreeSampler) Corrupt(pos kg.Triple) kg.Triple {
	neg := pos
	if s.rng.Bernoulli(0.5) {
		for {
			if e := s.draw(); e != pos.H {
				neg.H = e
				return neg
			}
		}
	}
	for {
		if e := s.draw(); e != pos.T {
			neg.T = e
			return neg
		}
	}
}

// CorruptN implements Corrupter.
func (s *DegreeSampler) CorruptN(pos kg.Triple, n int, dst []kg.Triple) []kg.Triple {
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, s.Corrupt(pos))
	}
	return dst
}

// SelectHardest implements the paper's negative sample selection (§4.5):
// draw n negatives, score each with a forward pass, and return the one the
// model finds hardest to classify — the negative with the LEAST negative
// (i.e. highest) score. The second return value is the number of extra
// forward-pass scores spent, for compute-time accounting.
func SelectHardest(m Model, p *Params, s Corrupter, pos kg.Triple, n int, scratch []kg.Triple) (kg.Triple, int) {
	if n <= 1 {
		return s.Corrupt(pos), 0
	}
	cands := s.CorruptN(pos, n, scratch)
	best := cands[0]
	bestScore := m.Score(p, best)
	for _, c := range cands[1:] {
		if sc := m.Score(p, c); sc > bestScore {
			bestScore = sc
			best = c
		}
	}
	return best, n
}
