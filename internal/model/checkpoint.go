package model

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Checkpoint file layout (little endian):
//
//	magic "KGE1" | nameLen u32 | name | dim u32 | entities u32 |
//	relations u32 | width u32 | entity data f32s | relation data f32s

const checkpointMagic = "KGE1"

// SaveCheckpoint writes the model name, dimension and parameters to path.
func SaveCheckpoint(path string, m Model, p *Params) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("model: creating checkpoint: %w", err)
	}
	w := bufio.NewWriter(f)
	werr := func() error {
		if _, err := w.WriteString(checkpointMagic); err != nil {
			return err
		}
		name := m.Name()
		hdr := []uint32{uint32(len(name))}
		if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
			return err
		}
		if _, err := w.WriteString(name); err != nil {
			return err
		}
		dims := []uint32{uint32(m.Dim()), uint32(p.Entity.Rows), uint32(p.Relation.Rows), uint32(m.Width())}
		if err := binary.Write(w, binary.LittleEndian, dims); err != nil {
			return err
		}
		if err := writeF32(w, p.Entity.Data); err != nil {
			return err
		}
		return writeF32(w, p.Relation.Data)
	}()
	if werr != nil {
		_ = f.Close()
		return fmt.Errorf("model: writing checkpoint: %w", werr)
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("model: flushing checkpoint: %w", err)
	}
	return f.Close()
}

// LoadCheckpoint reads a checkpoint and reconstructs the model and its
// parameters.
func LoadCheckpoint(path string) (Model, *Params, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("model: opening checkpoint: %w", err)
	}
	defer f.Close() //kgelint:ignore droppederr read-only close
	r := bufio.NewReader(f)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != checkpointMagic {
		return nil, nil, fmt.Errorf("model: %s is not a KGE checkpoint", path)
	}
	var nameLen uint32
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return nil, nil, fmt.Errorf("model: corrupt checkpoint header: %w", err)
	}
	if nameLen > 64 {
		return nil, nil, fmt.Errorf("model: implausible model name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return nil, nil, fmt.Errorf("model: corrupt checkpoint name: %w", err)
	}
	var dims [4]uint32
	if err := binary.Read(r, binary.LittleEndian, &dims); err != nil {
		return nil, nil, fmt.Errorf("model: corrupt checkpoint dims: %w", err)
	}
	dim, entities, relations, width := int(dims[0]), int(dims[1]), int(dims[2]), int(dims[3])
	m := New(string(nameBuf), dim)
	if m.Width() != width {
		return nil, nil, fmt.Errorf("model: checkpoint width %d does not match %s dim %d", width, m.Name(), dim)
	}
	p := NewParams(m, entities, relations)
	if err := readF32(r, p.Entity.Data); err != nil {
		return nil, nil, fmt.Errorf("model: reading entity matrix: %w", err)
	}
	if err := readF32(r, p.Relation.Data); err != nil {
		return nil, nil, fmt.Errorf("model: reading relation matrix: %w", err)
	}
	return m, p, nil
}

func writeF32(w io.Writer, data []float32) error {
	buf := make([]byte, 4*4096)
	for off := 0; off < len(data); off += 4096 {
		end := off + 4096
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		for i, v := range chunk {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := w.Write(buf[:4*len(chunk)]); err != nil {
			return err
		}
	}
	return nil
}

func readF32(r io.Reader, data []float32) error {
	buf := make([]byte, 4*4096)
	for off := 0; off < len(data); off += 4096 {
		end := off + 4096
		if end > len(data) {
			end = len(data)
		}
		n := 4 * (end - off)
		if _, err := io.ReadFull(r, buf[:n]); err != nil {
			return err
		}
		for i := off; i < end; i++ {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*(i-off):]))
		}
	}
	return nil
}
