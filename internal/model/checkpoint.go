package model

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Checkpoint file layout (little endian):
//
//	magic "KGE2" | nameLen u32 | name | dim u32 | entities u32 |
//	relations u32 | width u32 | entity data f32s | relation data f32s |
//	crc32 u32
//
// The trailing CRC-32 (IEEE) covers every byte before it. Writes are
// crash-safe: the file is assembled at path+".tmp", fsynced, and renamed
// into place, so a crash mid-write leaves the previous checkpoint intact
// and a torn write is caught by the checksum on load. The former "KGE1"
// format (no checksum) is rejected with a distinct error.

const (
	checkpointMagic       = "KGE2"
	checkpointMagicLegacy = "KGE1"
)

// ErrCorruptCheckpoint is wrapped by LoadCheckpoint errors caused by a
// failed integrity check (truncation or checksum mismatch), as opposed to a
// missing file or an unrecognized format.
var ErrCorruptCheckpoint = errors.New("model: corrupt checkpoint")

// SaveCheckpoint writes the model name, dimension and parameters to path
// using the crash-safe protocol: write to path+".tmp" with a CRC-32 footer,
// fsync, rename over path. On error the temporary file is removed and any
// existing checkpoint at path is left untouched.
func SaveCheckpoint(path string, m Model, p *Params) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("model: creating checkpoint: %w", err)
	}
	fail := func(stage string, err error) error {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("model: %s checkpoint: %w", stage, err)
	}
	bw := bufio.NewWriter(f)
	crc := crc32.NewIEEE()
	w := io.MultiWriter(bw, crc) // body bytes are hashed as they are written
	werr := func() error {
		if _, err := w.Write([]byte(checkpointMagic)); err != nil {
			return err
		}
		name := m.Name()
		hdr := []uint32{uint32(len(name))}
		if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
			return err
		}
		if _, err := w.Write([]byte(name)); err != nil {
			return err
		}
		dims := []uint32{uint32(m.Dim()), uint32(p.Entity.Rows), uint32(p.Relation.Rows), uint32(m.Width())}
		if err := binary.Write(w, binary.LittleEndian, dims); err != nil {
			return err
		}
		if err := writeF32(w, p.Entity.Data); err != nil {
			return err
		}
		if err := writeF32(w, p.Relation.Data); err != nil {
			return err
		}
		// Footer: checksum of everything above, itself unhashed.
		return binary.Write(bw, binary.LittleEndian, crc.Sum32())
	}()
	if werr != nil {
		return fail("writing", werr)
	}
	if err := bw.Flush(); err != nil {
		return fail("flushing", err)
	}
	if err := f.Sync(); err != nil {
		return fail("syncing", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("model: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("model: publishing checkpoint: %w", err)
	}
	// Best-effort directory sync so the rename itself survives a crash;
	// not all filesystems support it, so errors are ignored.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}

// LoadCheckpoint reads a checkpoint, verifies its checksum, and
// reconstructs the model and its parameters. Truncated or corrupted files
// are rejected with an error wrapping ErrCorruptCheckpoint — a damaged
// checkpoint is never silently loaded.
func LoadCheckpoint(path string) (Model, *Params, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("model: opening checkpoint: %w", err)
	}
	defer f.Close() //kgelint:ignore droppederr read-only close
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("model: stat checkpoint: %w", err)
	}
	if fi.Size() < int64(len(checkpointMagic))+4 {
		return nil, nil, fmt.Errorf("%w: %s truncated to %d bytes", ErrCorruptCheckpoint, path, fi.Size())
	}
	// Hash exactly the body region [0, size-4): the reader below cannot
	// consume past it, and whatever the parser leaves behind is drained
	// through the hash before the footer check, so trailing garbage inside
	// the region flips the checksum rather than being ignored.
	bodyLen := fi.Size() - 4
	crc := crc32.NewIEEE()
	r := bufio.NewReader(io.TeeReader(io.LimitReader(f, bodyLen), crc))

	truncated := func(what string, err error) error {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("%w: %s truncated in %s", ErrCorruptCheckpoint, path, what)
		}
		return fmt.Errorf("model: reading checkpoint %s: %w", what, err)
	}

	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, nil, truncated("magic", err)
	}
	switch string(magic) {
	case checkpointMagic:
	case checkpointMagicLegacy:
		return nil, nil, fmt.Errorf("model: %s is a legacy KGE1 checkpoint (no checksum); re-save it with this version", path)
	default:
		return nil, nil, fmt.Errorf("model: %s is not a KGE checkpoint", path)
	}
	var nameLen uint32
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return nil, nil, truncated("header", err)
	}
	if nameLen > 64 {
		return nil, nil, fmt.Errorf("%w: implausible model name length %d", ErrCorruptCheckpoint, nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return nil, nil, truncated("name", err)
	}
	var dims [4]uint32
	if err := binary.Read(r, binary.LittleEndian, &dims); err != nil {
		return nil, nil, truncated("dims", err)
	}
	dim, entities, relations, width := int(dims[0]), int(dims[1]), int(dims[2]), int(dims[3])
	// A corrupt header must never reach New or NewParams: New panics on an
	// unknown name or a non-positive dimension, and unvalidated row counts
	// would size an arbitrarily large allocation from four attacker-chosen
	// bytes. Validate the name, require positive geometry, and cross-check
	// the declared payload length against the actual body size before
	// constructing anything.
	name := string(nameBuf)
	if !IsKnownModel(name) {
		return nil, nil, fmt.Errorf("%w: %s names unknown model %q", ErrCorruptCheckpoint, path, name)
	}
	if dim <= 0 || width <= 0 || entities < 0 || relations < 0 {
		return nil, nil, fmt.Errorf("%w: %s declares impossible geometry dim=%d width=%d entities=%d relations=%d",
			ErrCorruptCheckpoint, path, dim, width, entities, relations)
	}
	headerLen := int64(len(checkpointMagic)) + 4 + int64(nameLen) + 16
	payload := 4 * int64(width) * (int64(entities) + int64(relations))
	if headerLen+payload != bodyLen {
		return nil, nil, fmt.Errorf("%w: %s declares %d payload bytes but body holds %d",
			ErrCorruptCheckpoint, path, payload, bodyLen-headerLen)
	}
	m := New(name, dim)
	if m.Width() != width {
		return nil, nil, fmt.Errorf("%w: %s checkpoint width %d does not match %s dim %d",
			ErrCorruptCheckpoint, path, width, m.Name(), dim)
	}
	p := NewParams(m, entities, relations)
	if err := readF32(r, p.Entity.Data); err != nil {
		return nil, nil, truncated("entity matrix", err)
	}
	if err := readF32(r, p.Relation.Data); err != nil {
		return nil, nil, truncated("relation matrix", err)
	}
	// Drain whatever of the body region the parser did not consume, then
	// verify the footer.
	if _, err := io.Copy(io.Discard, r); err != nil {
		return nil, nil, fmt.Errorf("model: reading checkpoint tail: %w", err)
	}
	var footer [4]byte
	if _, err := io.ReadFull(f, footer[:]); err != nil {
		return nil, nil, truncated("checksum footer", err)
	}
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(footer[:]); got != want {
		return nil, nil, fmt.Errorf("%w: %s checksum mismatch (have %08x, footer says %08x)", ErrCorruptCheckpoint, path, got, want)
	}
	return m, p, nil
}

func writeF32(w io.Writer, data []float32) error {
	buf := make([]byte, 4*4096)
	for off := 0; off < len(data); off += 4096 {
		end := off + 4096
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		for i, v := range chunk {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := w.Write(buf[:4*len(chunk)]); err != nil {
			return err
		}
	}
	return nil
}

func readF32(r io.Reader, data []float32) error {
	buf := make([]byte, 4*4096)
	for off := 0; off < len(data); off += 4096 {
		end := off + 4096
		if end > len(data) {
			end = len(data)
		}
		n := 4 * (end - off)
		if _, err := io.ReadFull(r, buf[:n]); err != nil {
			return err
		}
		for i := off; i < end; i++ {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*(i-off):]))
		}
	}
	return nil
}
