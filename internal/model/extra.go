package model

import (
	"math"

	"kgedist/internal/kg"
	"kgedist/internal/tensor"
)

// This file implements the additional KGE models the paper's future work
// points at ("we would like to explore our methods with other KGE models").
// All five strategies except negative-sample selection are model-agnostic;
// these models plug into the same trainer.

// ---- RotatE ----------------------------------------------------------------

// RotatE (Sun et al. 2019) embeds entities as complex vectors and relations
// as rotations on the unit circle. A row stores [Re | Im] for entities; for
// relations it stores [cos(theta) | sin(theta)] directly (kept normalized in
// spirit by the score being phase-based; the trainer treats them as free
// parameters, which is the common unconstrained implementation).
//
// Score: -|| h o r - t ||^2 where o is complex element-wise product.
type RotatE struct{ dim int }

// NewRotatE returns a RotatE model with the given complex dimension.
func NewRotatE(dim int) *RotatE {
	if dim <= 0 {
		panic("model: non-positive dimension")
	}
	return &RotatE{dim: dim}
}

// Name implements Model.
func (m *RotatE) Name() string { return "rotate" }

// Dim implements Model.
func (m *RotatE) Dim() int { return m.dim }

// Width implements Model.
func (m *RotatE) Width() int { return 2 * m.dim }

// Score implements Model.
func (m *RotatE) Score(p *Params, t kg.Triple) float32 { return scoreVia(m, p, t) }

// ScoreRows implements Model over explicit rows.
//
//kgelint:hotpath
func (m *RotatE) ScoreRows(h, r, tt []float32) float32 {
	d := m.dim
	hr, hi := h[:d], h[d:]
	rr, ri := r[:d], r[d:]
	tr, ti := tt[:d], tt[d:]
	var s float64
	for i := 0; i < d; i++ {
		// (h o r) - t, complex multiplication per coordinate.
		reDiff := float64(hr[i]*rr[i] - hi[i]*ri[i] - tr[i])
		imDiff := float64(hr[i]*ri[i] + hi[i]*rr[i] - ti[i])
		s += reDiff*reDiff + imDiff*imDiff
	}
	return float32(-s)
}

// AccumulateScoreGrad implements Model.
func (m *RotatE) AccumulateScoreGrad(p *Params, t kg.Triple, coef float32, gh, gr, gt []float32) {
	gradVia(m, p, t, coef, gh, gr, gt)
}

// AccumulateScoreGradRows implements Model over explicit rows.
//
//kgelint:hotpath
func (m *RotatE) AccumulateScoreGradRows(h, r, tt []float32, coef float32, gh, gr, gt []float32) {
	d := m.dim
	hr, hi := h[:d], h[d:]
	rr, ri := r[:d], r[d:]
	tr, ti := tt[:d], tt[d:]
	ghr, ghi := gh[:d], gh[d:]
	grr, gri := gr[:d], gr[d:]
	gtr, gti := gt[:d], gt[d:]
	for i := 0; i < d; i++ {
		reDiff := hr[i]*rr[i] - hi[i]*ri[i] - tr[i]
		imDiff := hr[i]*ri[i] + hi[i]*rr[i] - ti[i]
		// dScore/dx = -2 * (reDiff * dRe/dx + imDiff * dIm/dx).
		c := -2 * coef
		ghr[i] += c * (reDiff*rr[i] + imDiff*ri[i])
		ghi[i] += c * (-reDiff*ri[i] + imDiff*rr[i])
		grr[i] += c * (reDiff*hr[i] + imDiff*hi[i])
		gri[i] += c * (-reDiff*hi[i] + imDiff*hr[i])
		gtr[i] += c * (-reDiff)
		gti[i] += c * (-imDiff)
	}
}

// ScoreFlops implements Model.
func (m *RotatE) ScoreFlops() float64 { return float64(14 * m.dim) }

// GradFlops implements Model.
func (m *RotatE) GradFlops() float64 { return float64(30 * m.dim) }

// ---- TransH ----------------------------------------------------------------

// TransH (Wang et al. 2014) translates on a relation-specific hyperplane:
// entities are projected onto the hyperplane with normal w_r before the
// TransE-style translation d_r. A relation row stores [w | d] (width 2*dim);
// the normal is used unnormalized, as in lightweight implementations, with
// L2 regularization keeping it bounded.
//
// Score: -|| (h - (w.h) w) + d - (t - (w.t) w) ||^2.
type TransH struct{ dim int }

// NewTransH returns a TransH model.
func NewTransH(dim int) *TransH {
	if dim <= 0 {
		panic("model: non-positive dimension")
	}
	return &TransH{dim: dim}
}

// Name implements Model.
func (m *TransH) Name() string { return "transh" }

// Dim implements Model.
func (m *TransH) Dim() int { return m.dim }

// Width implements Model.
func (m *TransH) Width() int { return 2 * m.dim }

// project computes e - (w.e) w into out (len dim).
func projectH(e, w, out []float32) {
	dot := tensor.Dot(w, e)
	for i := range out {
		out[i] = e[i] - dot*w[i]
	}
}

// Score implements Model. Entity rows are width 2*dim for interface
// uniformity; only the first dim coordinates carry the embedding.
func (m *TransH) Score(p *Params, t kg.Triple) float32 { return scoreVia(m, p, t) }

// ScoreRows implements Model over explicit rows.
//
//kgelint:hotpath
func (m *TransH) ScoreRows(hRow, rel, tRow []float32) float32 {
	d := m.dim
	h := hRow[:d]
	w, dvec := rel[:d], rel[d:]
	tt := tRow[:d]
	var s float64
	wh := tensor.Dot(w, h)
	wt := tensor.Dot(w, tt)
	for i := 0; i < d; i++ {
		diff := float64((h[i] - wh*w[i]) + dvec[i] - (tt[i] - wt*w[i]))
		s += diff * diff
	}
	return float32(-s)
}

// AccumulateScoreGrad implements Model.
func (m *TransH) AccumulateScoreGrad(p *Params, t kg.Triple, coef float32, gh, gr, gt []float32) {
	gradVia(m, p, t, coef, gh, gr, gt)
}

// AccumulateScoreGradRows implements Model over explicit rows.
//
//kgelint:hotpath
func (m *TransH) AccumulateScoreGradRows(hRow, rel, tRow []float32, coef float32, gh, gr, gt []float32) {
	d := m.dim
	h := hRow[:d]
	w, dvec := rel[:d], rel[d:]
	tt := tRow[:d]
	wh := tensor.Dot(w, h)
	wt := tensor.Dot(w, tt)

	// diff = proj(h) + d - proj(t); score = -||diff||^2. diff_i is cheap
	// enough to recompute that two passes beat a scratch slice — this keeps
	// the kernel allocation-free for any caller.
	diffAt := func(i int) float32 {
		return (h[i] - wh*w[i]) + dvec[i] - (tt[i] - wt*w[i])
	}
	var diffW float32
	for i := 0; i < d; i++ {
		diffW += diffAt(i) * w[i]
	}
	c := -2 * coef
	ghv, gtv := gh[:d], gt[:d]
	grw, grd := gr[:d], gr[d:]
	for i := 0; i < d; i++ {
		diff := diffAt(i)
		// d diff/d h_i = e_i - w_i w  => contribution diff_i - (diff.w) w_i.
		ghv[i] += c * (diff - diffW*w[i])
		gtv[i] += c * (-(diff - diffW*w[i]))
		// d diff/d d_i = e_i.
		grd[i] += c * diff
		// d diff/d w_i: -(w.h) diff_i - (diff.w) h_i + (w.t) diff_i + (diff.w) t_i.
		grw[i] += c * (-(wh)*diff - diffW*h[i] + wt*diff + diffW*tt[i])
	}
}

// ScoreFlops implements Model.
func (m *TransH) ScoreFlops() float64 { return float64(10 * m.dim) }

// GradFlops implements Model.
func (m *TransH) GradFlops() float64 { return float64(24 * m.dim) }

// ---- SimplE ----------------------------------------------------------------

// SimplE (Kazemi & Poole 2018) keeps two embeddings per entity (head role
// and tail role) and two per relation (forward and inverse), scoring
//
//	phi = ( <h_H, r_f, t_T> + <t_H, r_i, h_T> ) / 2.
//
// Rows store [head-role | tail-role] for entities and [forward | inverse]
// for relations.
type SimplE struct{ dim int }

// NewSimplE returns a SimplE model.
func NewSimplE(dim int) *SimplE {
	if dim <= 0 {
		panic("model: non-positive dimension")
	}
	return &SimplE{dim: dim}
}

// Name implements Model.
func (m *SimplE) Name() string { return "simple" }

// Dim implements Model.
func (m *SimplE) Dim() int { return m.dim }

// Width implements Model.
func (m *SimplE) Width() int { return 2 * m.dim }

// Score implements Model.
func (m *SimplE) Score(p *Params, t kg.Triple) float32 { return scoreVia(m, p, t) }

// ScoreRows implements Model over explicit rows.
//
//kgelint:hotpath
func (m *SimplE) ScoreRows(h, r, tt []float32) float32 {
	d := m.dim
	hH, hT := h[:d], h[d:]
	rf, ri := r[:d], r[d:]
	tH, tT := tt[:d], tt[d:]
	return (tensor.Dot3(hH, rf, tT) + tensor.Dot3(tH, ri, hT)) / 2
}

// AccumulateScoreGrad implements Model.
func (m *SimplE) AccumulateScoreGrad(p *Params, t kg.Triple, coef float32, gh, gr, gt []float32) {
	gradVia(m, p, t, coef, gh, gr, gt)
}

// AccumulateScoreGradRows implements Model over explicit rows.
//
//kgelint:hotpath
func (m *SimplE) AccumulateScoreGradRows(h, r, tt []float32, coef float32, gh, gr, gt []float32) {
	d := m.dim
	hH, hT := h[:d], h[d:]
	rf, ri := r[:d], r[d:]
	tH, tT := tt[:d], tt[d:]
	ghH, ghT := gh[:d], gh[d:]
	grf, gri := gr[:d], gr[d:]
	gtH, gtT := gt[:d], gt[d:]
	c := coef / 2
	for i := 0; i < d; i++ {
		// Forward term <h_H, r_f, t_T>.
		ghH[i] += c * rf[i] * tT[i]
		grf[i] += c * hH[i] * tT[i]
		gtT[i] += c * hH[i] * rf[i]
		// Inverse term <t_H, r_i, h_T>.
		gtH[i] += c * ri[i] * hT[i]
		gri[i] += c * tH[i] * hT[i]
		ghT[i] += c * tH[i] * ri[i]
	}
}

// ScoreFlops implements Model.
func (m *SimplE) ScoreFlops() float64 { return float64(6 * m.dim) }

// GradFlops implements Model.
func (m *SimplE) GradFlops() float64 { return float64(18 * m.dim) }

// normalizePhase is a helper kept for RotatE experimentation: it rescales a
// relation row's (cos, sin) pairs onto the unit circle.
func normalizePhase(row []float32, dim int) {
	for i := 0; i < dim; i++ {
		re, im := float64(row[i]), float64(row[dim+i])
		n := math.Hypot(re, im)
		if n > 0 {
			row[i] = float32(re / n)
			row[dim+i] = float32(im / n)
		}
	}
}
