package model

import (
	"testing"

	"kgedist/internal/xrand"
)

// Per-model kernel benchmarks: one scored triple and one score+grad step
// through a warm Scratch, the inner loop of training and serving. The
// triples/sec metric is what the paper's throughput plots are built from.

func benchSetup(name string) (Model, *Params, *Scratch) {
	m := New(name, 64)
	p := NewParams(m, 1000, 20)
	p.Init(m, xrand.New(1))
	return m, p, NewScratch(m.Width())
}

func BenchmarkScore(b *testing.B) {
	for _, name := range []string{"complex", "distmult", "transe"} {
		b.Run(name, func(b *testing.B) {
			m, p, s := benchSetup(name)
			b.ReportAllocs()
			var sink float32
			for i := 0; i < b.N; i++ {
				sink += s.Score(m, p, int32(i%1000), int32(i%20), int32((i+7)%1000))
			}
			_ = sink
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "triples/sec")
		})
	}
}

func BenchmarkScoreGradStep(b *testing.B) {
	for _, name := range []string{"complex", "distmult", "transe"} {
		b.Run(name, func(b *testing.B) {
			m, p, s := benchSetup(name)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sc := s.Score(m, p, int32(i%1000), int32(i%20), int32((i+7)%1000))
				s.ZeroGrads()
				m.AccumulateScoreGradRows(s.H, s.R, s.T, LogisticLossGrad(sc, 1), s.GH, s.GR, s.GT)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "triples/sec")
		})
	}
}
