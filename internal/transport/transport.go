// Package transport abstracts the byte-moving substrate underneath
// internal/mpi. The collectives (ring all-reduce, binomial broadcast, ring
// all-gather) are algorithms over point-to-point sends and receives plus a
// global rendezvous; this package defines that contract once so it can be
// satisfied by two very different fabrics:
//
//   - chantransport: every rank is a goroutine in one process and links are
//     buffered Go channels — the deterministic simulation backend the golden
//     runs and fault-plan tests are built on.
//   - tcptransport: every rank is a real OS process and links are TCP
//     connections with length-prefixed CRC-checked frames, heartbeats, dial
//     retry and a rendezvous handshake — the backend that survives real
//     connection failures.
//
// The failure model is shared (ULFM-style, see internal/mpi/fault.go): a
// dead peer trips a world-global abort, every blocked or future operation
// returns an error, and the caller recovers by shrinking the world. Both
// backends must pass the conformance suite in transport/conformance so their
// semantics cannot drift.
package transport

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Message is the unit carried by point-to-point links. Exactly one payload
// field is populated per message; Seq guards against collective skew bugs
// (a rank receiving a frame from a different collective than the one it is
// executing).
//
// Ownership: a sent Message and its slices belong to the transport until the
// peer consumes them. Callers must not mutate payloads after Send. The
// channel backend moves the slices by reference (zero copy); the TCP backend
// serializes them, so received slices are always freshly allocated there.
type Message struct {
	Seq uint64
	F32 []float32
	I32 []int32
	Raw []byte
	F64 float64
}

// ErrRecvTimeout reports that a receive watchdog deadline expired with no
// message and no failure verdict. The caller (mpi's recv) decides what the
// timeout means — it declares the silent peer dead via FailRank.
var ErrRecvTimeout = errors.New("transport: receive deadline expired")

// ErrAborted reports that an operation was torn down by the world-global
// abort but no dead rank had been recorded yet (a should-not-happen race
// guard; the usual path returns *RankFailedError from Err).
var ErrAborted = errors.New("transport: operation aborted")

// RankFailedError reports that one or more ranks died during a collective.
// Every surviving rank observes the same error at its next (or current)
// operation; recovery is to Shrink the world over the survivors and re-run.
// internal/mpi aliases this type so `*mpi.RankFailedError` and
// `*transport.RankFailedError` are interchangeable in errors.As.
type RankFailedError struct {
	// Ranks lists the dead ranks, sorted ascending.
	Ranks []int
}

// Error implements the error interface.
func (e *RankFailedError) Error() string {
	return fmt.Sprintf("mpi: rank(s) %v failed; shrink the world to continue", e.Ranks)
}

// Endpoint is one rank's handle on the fabric. All methods may be called
// concurrently with each other; Send/Recv for a given (peer, direction) pair
// are called from one goroutine at a time (the rank's collective loop).
//
// Every blocking operation must select on the failure abort: after any rank
// is declared dead, blocked and future calls return the *RankFailedError
// from Err instead of hanging.
type Endpoint interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the world size.
	Size() int
	// Send delivers m to dst's inbox for this rank. It blocks only on
	// backpressure (a full link) and unblocks with an error on abort.
	Send(dst int, m Message) error
	// Recv returns the next message from src. A timeout > 0 arms a
	// watchdog: if it expires before a message or an abort, Recv returns
	// ErrRecvTimeout and the caller chooses the verdict (mpi declares the
	// silent peer dead). timeout <= 0 blocks until a message or abort.
	Recv(src int, timeout time.Duration) (Message, error)
	// Rendezvous blocks until every live rank has called it, then releases
	// all of them. onLast (may be nil) runs exactly once per rendezvous,
	// on one rank, after all have arrived and before any is released —
	// the hook mpi uses to charge a collective's cost once per world.
	Rendezvous(onLast func()) error
	// FailRank declares a rank dead, tripping the world-global abort.
	// Idempotent; safe from any goroutine.
	FailRank(rank int)
	// Failed returns the ranks known dead, sorted ascending (nil if none).
	Failed() []int
	// Err returns the *RankFailedError for the current dead set, or nil.
	Err() error
	// Close releases the endpoint's resources (connections, goroutines).
	// After Close, operations fail. Close is idempotent.
	Close() error
}

// Shrinker is implemented by endpoints that can rebuild themselves over the
// survivors of a failure (the TCP backend re-meshes; the channel backend is
// rebuilt wholesale by mpi.NewWorld instead). dead lists current-world ranks;
// the returned endpoint renumbers survivors densely in rank order. The old
// endpoint is consumed: its connections are torn down and only the returned
// endpoint may be used afterwards.
type Shrinker interface {
	Shrink(dead []int) (Endpoint, error)
}

// FailureState tracks dead ranks and the world-wide abort signal. Both
// backends embed one; mpi reads the verdict through the Endpoint interface.
type FailureState struct {
	mu      sync.Mutex
	dead    []int
	abort   chan struct{}
	aborted bool
	onFirst func()
}

// NewFailureState returns a healthy failure state. onFirstFail (may be nil)
// runs once, when the first rank is declared dead, while the abort channel
// is being closed — backends use it to tear down their rendezvous primitive.
func NewFailureState(onFirstFail func()) *FailureState {
	return &FailureState{abort: make(chan struct{}), onFirst: onFirstFail}
}

// Abort returns the channel closed when any rank is declared dead. Blocking
// operations select on it.
func (fs *FailureState) Abort() <-chan struct{} { return fs.abort }

// Fail marks rank dead and trips the abort signal on first use. Reports
// whether the rank was newly dead.
//
//kgelint:coldpath runs once per rank death, never per batch
func (fs *FailureState) Fail(rank int) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, r := range fs.dead {
		if r == rank {
			return false
		}
	}
	fs.dead = append(fs.dead, rank)
	sort.Ints(fs.dead)
	if !fs.aborted {
		fs.aborted = true
		if fs.onFirst != nil {
			fs.onFirst()
		}
		close(fs.abort)
	}
	return true
}

// Failed returns a copy of the dead-rank set (nil when healthy).
//
//kgelint:coldpath failure bookkeeping, allocation is irrelevant once ranks die
func (fs *FailureState) Failed() []int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if len(fs.dead) == 0 {
		return nil
	}
	return append([]int(nil), fs.dead...)
}

// Err returns the RankFailedError for the current dead set, or nil.
//
//kgelint:coldpath failure bookkeeping, allocation is irrelevant once ranks die
func (fs *FailureState) Err() error {
	ranks := fs.Failed()
	if ranks == nil {
		return nil
	}
	return &RankFailedError{Ranks: ranks}
}
