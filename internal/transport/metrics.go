package transport

// Transport health instrumentation, built on the lock-free runtime types in
// internal/metrics. One Metrics instance is shared by an endpoint and all of
// its successors across Shrink generations, so reconnect and failure
// counters accumulate over the life of the process rather than resetting on
// every re-mesh. Rendered through WritePrometheus for the kgetrain
// -metrics-addr endpoint.

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"kgedist/internal/metrics"
)

// RTTBuckets returns histogram upper bounds in seconds spanning the range
// application-level heartbeat round-trips live in: 50µs (localhost loopback)
// up to 10s (a peer on the edge of a heartbeat timeout).
func RTTBuckets() []float64 {
	return []float64{
		0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Metrics aggregates transport health counters. All fields are safe for
// concurrent use; a nil *Metrics is a valid no-op sink via the method set.
type Metrics struct {
	BytesSent       metrics.Counter
	BytesRecv       metrics.Counter
	FramesSent      metrics.Counter
	FramesRecv      metrics.Counter
	Reconnects      metrics.Counter // dial retries after a failed attempt
	HeartbeatMisses metrics.Counter // read deadlines expired waiting on a peer
	CRCErrors       metrics.Counter // frames rejected by checksum
	RankFailures    metrics.Counter // peers declared dead

	mu  sync.Mutex
	rtt map[int]*metrics.Histogram // per-peer heartbeat RTT, keyed by original rank
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics {
	return &Metrics{rtt: make(map[int]*metrics.Histogram)}
}

// ObserveRTT records one heartbeat round-trip (in seconds) for a peer,
// keyed by the peer's original (generation-0) rank so the series survives
// shrink renumbering. No-op on a nil receiver.
func (m *Metrics) ObserveRTT(origPeer int, seconds float64) {
	if m == nil {
		return
	}
	m.rttFor(origPeer).Observe(seconds)
}

func (m *Metrics) rttFor(origPeer int) *metrics.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.rtt[origPeer]
	if h == nil {
		h = metrics.NewHistogram(RTTBuckets()...)
		m.rtt[origPeer] = h
	}
	return h
}

// AddSent records one outbound frame of n wire bytes. No-op on nil.
func (m *Metrics) AddSent(n int64) {
	if m == nil {
		return
	}
	m.FramesSent.Inc()
	m.BytesSent.Add(n)
}

// AddRecv records one inbound frame of n wire bytes. No-op on nil.
func (m *Metrics) AddRecv(n int64) {
	if m == nil {
		return
	}
	m.FramesRecv.Inc()
	m.BytesRecv.Add(n)
}

// IncReconnect, IncHeartbeatMiss, IncCRCError and IncRankFailure bump the
// corresponding counter; all are no-ops on a nil receiver so the endpoint
// hot paths need no nil checks.
func (m *Metrics) IncReconnect() {
	if m != nil {
		m.Reconnects.Inc()
	}
}

// IncHeartbeatMiss records one expired peer read deadline.
func (m *Metrics) IncHeartbeatMiss() {
	if m != nil {
		m.HeartbeatMisses.Inc()
	}
}

// IncCRCError records one corrupt frame.
func (m *Metrics) IncCRCError() {
	if m != nil {
		m.CRCErrors.Inc()
	}
}

// IncRankFailure records one peer declared dead.
func (m *Metrics) IncRankFailure() {
	if m != nil {
		m.RankFailures.Inc()
	}
}

// WritePrometheus renders every counter and per-peer RTT histogram in the
// Prometheus text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	if m == nil {
		return
	}
	counters := []struct {
		name string
		c    *metrics.Counter
	}{
		{"kgedist_transport_bytes_sent_total", &m.BytesSent},
		{"kgedist_transport_bytes_received_total", &m.BytesRecv},
		{"kgedist_transport_frames_sent_total", &m.FramesSent},
		{"kgedist_transport_frames_received_total", &m.FramesRecv},
		{"kgedist_transport_reconnect_attempts_total", &m.Reconnects},
		{"kgedist_transport_heartbeat_misses_total", &m.HeartbeatMisses},
		{"kgedist_transport_crc_errors_total", &m.CRCErrors},
		{"kgedist_transport_rank_failures_total", &m.RankFailures},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.c.Value())
	}
	m.mu.Lock()
	peers := make([]int, 0, len(m.rtt))
	for p := range m.rtt {
		peers = append(peers, p)
	}
	snaps := make(map[int]metrics.HistogramSnapshot, len(m.rtt))
	for p, h := range m.rtt {
		snaps[p] = h.Snapshot()
	}
	m.mu.Unlock()
	sort.Ints(peers)
	const rttName = "kgedist_transport_heartbeat_rtt_seconds"
	if len(peers) > 0 {
		fmt.Fprintf(w, "# TYPE %s histogram\n", rttName)
	}
	for _, p := range peers {
		s := snaps[p]
		var cum int64
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			fmt.Fprintf(w, "%s_bucket{peer=\"%d\",le=\"%g\"} %d\n", rttName, p, b, cum)
		}
		cum += s.Counts[len(s.Counts)-1]
		fmt.Fprintf(w, "%s_bucket{peer=\"%d\",le=\"+Inf\"} %d\n", rttName, p, cum)
		fmt.Fprintf(w, "%s_sum{peer=\"%d\"} %g\n", rttName, p, s.Sum)
		fmt.Fprintf(w, "%s_count{peer=\"%d\"} %d\n", rttName, p, s.Count)
	}
}
