// Package conformance is the executable contract of transport.Endpoint: a
// table of behavioral tests every backend must pass — ordering, payload
// framing, concurrent pairwise traffic, rendezvous barrier semantics, abort
// unblocking blocked operations, and watchdog expiry. The channel and TCP
// backends both run this suite from their side of the fence, so their
// semantics cannot drift apart: a message that would reorder, a Recv that
// would hang through an abort, or a watchdog that never fires breaks the
// suite before it can break a training run.
package conformance

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kgedist/internal/transport"
)

// Factory builds a fully connected in-process world of p endpoints, ready
// for traffic. The suite closes every endpoint at the end of each subtest;
// the factory only needs t.Cleanup for extra resources (listeners etc.).
type Factory func(t *testing.T, p int) []transport.Endpoint

// suiteTimeout bounds every subtest: a conformance failure must be a loud
// goroutine dump, not a silent package-level test deadline.
const suiteTimeout = 60 * time.Second

// Run executes the full conformance suite against the backend.
func Run(t *testing.T, factory Factory) {
	t.Run("PointToPointOrdering", func(t *testing.T) { testOrdering(t, factory) })
	t.Run("PayloadFraming", func(t *testing.T) { testFraming(t, factory) })
	t.Run("ConcurrentPairs", func(t *testing.T) { testConcurrentPairs(t, factory) })
	t.Run("RendezvousBarrier", func(t *testing.T) { testRendezvousBarrier(t, factory) })
	t.Run("AbortUnblocksRecv", func(t *testing.T) { testAbortUnblocksRecv(t, factory) })
	t.Run("AbortUnblocksRendezvous", func(t *testing.T) { testAbortUnblocksRendezvous(t, factory) })
	t.Run("WatchdogExpiry", func(t *testing.T) { testWatchdogExpiry(t, factory) })
	t.Run("FailureVerdict", func(t *testing.T) { testFailureVerdict(t, factory) })
}

// watchdog fails the test with a goroutine dump if fn does not return in
// time — the failure mode under test here is precisely "something hangs".
func watchdog(t *testing.T, name string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(suiteTimeout):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("%s: hung for %v; goroutine dump:\n%s", name, suiteTimeout, buf[:n])
	}
}

// closeAll tears the world down inside the watchdog: Close must neither
// hang nor leave peers stuck, even right after failures.
func closeAll(t *testing.T, eps []transport.Endpoint) {
	t.Helper()
	watchdog(t, "close", func() {
		var wg sync.WaitGroup
		for _, ep := range eps {
			wg.Add(1)
			go func(ep transport.Endpoint) {
				defer wg.Done()
				if err := ep.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}(ep)
		}
		wg.Wait()
	})
}

// testOrdering: messages between one (src, dst) pair are delivered in send
// order, payloads and sequence numbers intact.
func testOrdering(t *testing.T, factory Factory) {
	eps := factory(t, 2)
	defer closeAll(t, eps)
	const n = 200
	watchdog(t, "ordering", func() {
		go func() {
			for i := 0; i < n; i++ {
				m := transport.Message{Seq: uint64(i), F64: float64(i) + 0.5}
				if err := eps[0].Send(1, m); err != nil {
					t.Errorf("send %d: %v", i, err)
					return
				}
			}
		}()
		for i := 0; i < n; i++ {
			m, err := eps[1].Recv(0, 10*time.Second)
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if m.Seq != uint64(i) || m.F64 != float64(i)+0.5 { //kgelint:ignore floateq wire round-trip must be bit-exact
				t.Fatalf("recv %d: got seq %d f64 %v, want %d %v", i, m.Seq, m.F64, i, float64(i)+0.5)
			}
		}
	})
}

// testFraming: every payload shape — each field type, large slices, mixed
// messages — round-trips with exact values.
func testFraming(t *testing.T, factory Factory) {
	eps := factory(t, 2)
	defer closeAll(t, eps)
	bigF32 := make([]float32, 1<<16)
	for i := range bigF32 {
		bigF32[i] = float32(i) * 0.5
	}
	bigRaw := make([]byte, 1<<15)
	for i := range bigRaw {
		bigRaw[i] = byte(i)
	}
	msgs := []transport.Message{
		{Seq: 1, F32: []float32{0.5, -1.25, 3.1415927, 1e-38, -1e38}},
		{Seq: 2, I32: []int32{0, -1, 1 << 30, -(1 << 30), 42}},
		{Seq: 3, Raw: []byte("length-prefixed, CRC-checked")},
		{Seq: 4, F64: -1234.5678},
		{Seq: 5, F32: bigF32},
		{Seq: 6, Raw: bigRaw},
		{Seq: 7, F32: []float32{1}, F64: 2.5},
		{Seq: 8},
	}
	watchdog(t, "framing", func() {
		go func() {
			for i, m := range msgs {
				if err := eps[0].Send(1, m); err != nil {
					t.Errorf("send %d: %v", i, err)
					return
				}
			}
		}()
		for i, want := range msgs {
			got, err := eps[1].Recv(0, 10*time.Second)
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if got.Seq != want.Seq || got.F64 != want.F64 { //kgelint:ignore floateq wire round-trip must be bit-exact
				t.Fatalf("msg %d: seq/f64 mismatch: got %d/%v want %d/%v", i, got.Seq, got.F64, want.Seq, want.F64)
			}
			if len(got.F32) != len(want.F32) || len(got.I32) != len(want.I32) || len(got.Raw) != len(want.Raw) {
				t.Fatalf("msg %d: length mismatch: got %d/%d/%d want %d/%d/%d", i,
					len(got.F32), len(got.I32), len(got.Raw), len(want.F32), len(want.I32), len(want.Raw))
			}
			for j := range want.F32 {
				if got.F32[j] != want.F32[j] { //kgelint:ignore floateq wire round-trip must be bit-exact
					t.Fatalf("msg %d: F32[%d] = %v, want %v", i, j, got.F32[j], want.F32[j])
				}
			}
			for j := range want.I32 {
				if got.I32[j] != want.I32[j] {
					t.Fatalf("msg %d: I32[%d] = %v, want %v", i, j, got.I32[j], want.I32[j])
				}
			}
			for j := range want.Raw {
				if got.Raw[j] != want.Raw[j] {
					t.Fatalf("msg %d: Raw[%d] = %v, want %v", i, j, got.Raw[j], want.Raw[j])
				}
			}
		}
	})
}

// testConcurrentPairs: all ordered pairs exchange streams concurrently;
// per-pair FIFO must hold under full-mesh contention.
func testConcurrentPairs(t *testing.T, factory Factory) {
	const p, k = 4, 25
	eps := factory(t, p)
	defer closeAll(t, eps)
	tag := func(src, dst, i int) float64 { return float64(src*1_000_000 + dst*10_000 + i) }
	watchdog(t, "concurrent pairs", func() {
		var wg sync.WaitGroup
		for me := 0; me < p; me++ {
			for peer := 0; peer < p; peer++ {
				if peer == me {
					continue
				}
				wg.Add(2)
				go func(me, peer int) { // sender me -> peer
					defer wg.Done()
					for i := 0; i < k; i++ {
						if err := eps[me].Send(peer, transport.Message{Seq: uint64(i), F64: tag(me, peer, i)}); err != nil {
							t.Errorf("send %d->%d #%d: %v", me, peer, i, err)
							return
						}
					}
				}(me, peer)
				go func(me, peer int) { // receiver me <- peer
					defer wg.Done()
					for i := 0; i < k; i++ {
						m, err := eps[me].Recv(peer, 10*time.Second)
						if err != nil {
							t.Errorf("recv %d<-%d #%d: %v", me, peer, i, err)
							return
						}
						if m.F64 != tag(peer, me, i) { //kgelint:ignore floateq tags are small integers, exact by construction
							t.Errorf("recv %d<-%d #%d: got tag %v, want %v", me, peer, i, m.F64, tag(peer, me, i))
							return
						}
					}
				}(me, peer)
			}
		}
		wg.Wait()
	})
}

// testRendezvousBarrier: no participant may clear rendezvous r before every
// participant has entered it, across many reuses of the same endpoints.
func testRendezvousBarrier(t *testing.T, factory Factory) {
	const p, rounds = 3, 50
	eps := factory(t, p)
	defer closeAll(t, eps)
	arrived := make([]int32, rounds)
	watchdog(t, "rendezvous barrier", func() {
		var wg sync.WaitGroup
		for id := 0; id < p; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					atomic.AddInt32(&arrived[r], 1)
					if err := eps[id].Rendezvous(nil); err != nil {
						t.Errorf("rank %d round %d: %v", id, r, err)
						return
					}
					if got := atomic.LoadInt32(&arrived[r]); got != p {
						t.Errorf("rank %d released from round %d with %d/%d arrivals", id, r, got, p)
						return
					}
				}
			}(id)
		}
		wg.Wait()
	})
}

// testAbortUnblocksRecv: a Recv blocked with no watchdog must return the
// typed failure error the moment any rank is declared dead.
func testAbortUnblocksRecv(t *testing.T, factory Factory) {
	eps := factory(t, 2)
	defer closeAll(t, eps)
	watchdog(t, "abort unblocks recv", func() {
		errCh := make(chan error, 1)
		go func() {
			_, err := eps[1].Recv(0, 0)
			errCh <- err
		}()
		time.Sleep(50 * time.Millisecond) // let the Recv block
		eps[1].FailRank(0)
		err := <-errCh
		var rfe *transport.RankFailedError
		if !errors.As(err, &rfe) {
			t.Fatalf("blocked recv returned %v, want *RankFailedError", err)
		}
		if len(rfe.Ranks) == 0 || rfe.Ranks[0] != 0 {
			t.Fatalf("dead set %v, want [0]", rfe.Ranks)
		}
	})
}

// testAbortUnblocksRendezvous: a rank waiting at the barrier must be
// released with the failure error when a peer is declared dead — the
// classic "everyone else crashed at the collective" hang.
func testAbortUnblocksRendezvous(t *testing.T, factory Factory) {
	eps := factory(t, 2)
	defer closeAll(t, eps)
	watchdog(t, "abort unblocks rendezvous", func() {
		errCh := make(chan error, 1)
		go func() {
			errCh <- eps[0].Rendezvous(nil)
		}()
		time.Sleep(50 * time.Millisecond)
		eps[0].FailRank(1) // rank 1 never arrives; declare it dead
		err := <-errCh
		var rfe *transport.RankFailedError
		if !errors.As(err, &rfe) {
			t.Fatalf("blocked rendezvous returned %v, want *RankFailedError", err)
		}
	})
}

// testWatchdogExpiry: a Recv deadline with a healthy but silent peer
// returns ErrRecvTimeout (and nothing else), leaving the verdict to mpi.
func testWatchdogExpiry(t *testing.T, factory Factory) {
	eps := factory(t, 2)
	defer closeAll(t, eps)
	watchdog(t, "watchdog expiry", func() {
		start := time.Now()
		_, err := eps[0].Recv(1, 100*time.Millisecond)
		if !errors.Is(err, transport.ErrRecvTimeout) {
			t.Fatalf("got %v, want ErrRecvTimeout", err)
		}
		if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
			t.Fatalf("watchdog fired after %v, before the %v deadline", elapsed, 100*time.Millisecond)
		}
	})
}

// testFailureVerdict: after a failure, Failed/Err report the dead set and
// new blocked operations fail instead of waiting forever.
func testFailureVerdict(t *testing.T, factory Factory) {
	eps := factory(t, 3)
	defer closeAll(t, eps)
	watchdog(t, "failure verdict", func() {
		eps[0].FailRank(2)
		if got := eps[0].Failed(); len(got) != 1 || got[0] != 2 {
			t.Fatalf("Failed() = %v, want [2]", got)
		}
		var rfe *transport.RankFailedError
		if err := eps[0].Err(); !errors.As(err, &rfe) {
			t.Fatalf("Err() = %v, want *RankFailedError", err)
		} else if fmt.Sprint(rfe.Ranks) != "[2]" {
			t.Fatalf("Err() names %v, want [2]", rfe.Ranks)
		}
		if _, err := eps[0].Recv(1, 0); !errors.As(err, &rfe) {
			t.Fatalf("recv after failure returned %v, want *RankFailedError", err)
		}
	})
}
