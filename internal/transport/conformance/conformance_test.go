package conformance_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"kgedist/internal/transport"
	"kgedist/internal/transport/chantransport"
	"kgedist/internal/transport/conformance"
	"kgedist/internal/transport/tcptransport"
)

// TestChannelBackend runs the conformance suite over the in-process channel
// fabric (the deterministic simulation backend).
func TestChannelBackend(t *testing.T) {
	conformance.Run(t, func(t *testing.T, p int) []transport.Endpoint {
		h := chantransport.New(p)
		eps := make([]transport.Endpoint, p)
		for i := range eps {
			eps[i] = h.Endpoint(i)
		}
		return eps
	})
}

// TestTCPBackend runs the same suite over real sockets: p endpoints in this
// process, each with its own localhost listener, meshed through the full
// rendezvous handshake. Listeners are pre-bound and injected so the
// coordinator address is known before any endpoint dials.
func TestTCPBackend(t *testing.T) {
	conformance.Run(t, func(t *testing.T, p int) []transport.Endpoint {
		return dialTCPWorld(t, p)
	})
}

func dialTCPWorld(t *testing.T, p int) []transport.Endpoint {
	t.Helper()
	lns := make([]net.Listener, p)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
	}
	eps := make([]transport.Endpoint, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := tcptransport.Dial(tcptransport.Options{
				Rank:              i,
				WorldSize:         p,
				CoordinatorAddr:   lns[0].Addr().String(),
				Listener:          lns[i],
				ConnectDeadline:   30 * time.Second,
				HeartbeatInterval: 50 * time.Millisecond,
				HeartbeatTimeout:  5 * time.Second,
				Logf:              t.Logf,
			})
			eps[i], errs[i] = ep, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("dial rank %d: %v", i, err)
		}
	}
	return eps
}
