package tcptransport

// Rendezvous handshake and failure re-mesh.
//
// Membership is generational. Generation 0 is the full world; every
// World.Shrink advances the generation over the survivors. Each generation
// is sealed by the coordinator (original rank 0, whose death is the one
// unrecoverable failure):
//
//  1. Every other member dials the coordinator (retrying with backoff under
//     the connect deadline) and sends ftRegister carrying its generation,
//     original rank, world size, build tag, listen address and the set of
//     original ranks it believes dead. The frame header carries the
//     protocol version; any mismatch in version, build, world size or
//     membership view is answered with ftReject — a misconfigured process
//     cannot join.
//  2. The coordinator waits for exactly the expected survivors. A missing
//     registrant past the deadline is an error naming it (initial start
//     and re-mesh alike: membership is never silently shrunk during a
//     handshake — shrinking is the mpi layer's explicit decision).
//  3. The coordinator seals the roster (member original ranks + listen
//     addresses) and sends it back on each registration connection, which
//     is kept as the coordinator<->member mesh link.
//  4. Members mesh pairwise: for original ranks 0 < i < j, j dials i and
//     they exchange ftHello/ftAck (same validation). Higher ranks accept.
//  5. Everyone runs one dissemination barrier, so Dial/Shrink return only
//     once the entire generation is live.
//
// Failure recovery rides the same path: FailRank broadcasts ftRegroup, the
// mpi layer shrinks, and the survivors re-register for generation g+1. A
// survivor that reaches the coordinator before the coordinator itself has
// shrunk is parked (the listener stashes the handshake as "pending") and
// adopted when the coordinator's own establish for g+1 begins.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kgedist/internal/transport"
)

// rawConn pairs a connection with its buffered reader. The reader may hold
// over-read bytes, so it must follow the connection everywhere — handshake
// reads and the adopted read loop share it.
type rawConn struct {
	c  net.Conn
	br *bufio.Reader
}

func newRawConn(c net.Conn) rawConn {
	return rawConn{c: c, br: bufio.NewReader(c)}
}

// listenHost owns the listener across generations: the endpoint of the
// moment installs its accept sink, and the host survives Shrink so peers
// can always reach this process at one stable address.
type listenHost struct {
	ln     net.Listener
	mu     sync.Mutex
	sink   func(net.Conn)
	closed atomic.Bool
}

func newListenHost(opt Options, deadline time.Time) (*listenHost, error) {
	ln := opt.Listener
	if ln == nil {
		// Bind with retry: launchers commonly reserve a port by binding and
		// releasing it moments before the worker starts, so the first
		// attempts can race the kernel's release of the address.
		bindDeadline := time.Now().Add(minDuration(2*time.Second, time.Until(deadline)))
		for {
			var err error
			ln, err = net.Listen("tcp", opt.ListenAddr)
			if err == nil {
				break
			}
			if time.Now().After(bindDeadline) {
				return nil, fmt.Errorf("tcptransport: listen %s: %w", opt.ListenAddr, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	h := &listenHost{ln: ln}
	go h.acceptLoop()
	return h, nil
}

func (h *listenHost) acceptLoop() {
	for {
		c, err := h.ln.Accept()
		if err != nil {
			if h.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		h.mu.Lock()
		sink := h.sink
		h.mu.Unlock()
		if sink == nil {
			// Between generations: drop the conn; dialers retry with
			// backoff until the successor endpoint installs its sink.
			_ = c.Close()
			continue
		}
		go sink(c)
	}
}

func (h *listenHost) setSink(sink func(net.Conn)) {
	h.mu.Lock()
	h.sink = sink
	h.mu.Unlock()
}

func (h *listenHost) close() {
	if h.closed.CompareAndSwap(false, true) {
		_ = h.ln.Close()
	}
}

// pendingConn is an inbound handshake for the next generation, parked until
// this process shrinks too.
type pendingConn struct {
	rc      rawConn
	typ     byte
	payload []byte
}

// registration is a decoded ftRegister.
type registration struct {
	gen       uint32
	orig      int
	worldSize int
	build     string
	addr      string
	deadMask  uint64
	rc        rawConn
}

// helloConn is a decoded, acked ftHello.
type helloConn struct {
	orig int
	rc   rawConn
}

func encodeRegister(gen uint32, orig, worldSize int, build, addr string, deadMask uint64) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(orig))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(worldSize))
	buf = binary.LittleEndian.AppendUint64(buf, deadMask)
	buf = appendStr(buf, build)
	buf = appendStr(buf, addr)
	return buf
}

func decodeRegister(p []byte) (registration, error) {
	c := cursor{p: p}
	r := registration{gen: c.u32()}
	r.orig = int(c.u32())
	r.worldSize = int(c.u32())
	r.deadMask = c.u64()
	r.build = c.str()
	r.addr = c.str()
	return r, c.err
}

func encodeRoster(gen uint32, live []int, addrs map[int]string) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(live)))
	for _, orig := range live {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(orig))
		buf = appendStr(buf, addrs[orig])
	}
	return buf
}

func decodeRoster(p []byte) (gen uint32, live []int, addrs map[int]string, err error) {
	c := cursor{p: p}
	gen = c.u32()
	n := int(c.u32())
	if c.err == nil && (n < 0 || n > maxWorldSize) {
		return 0, nil, nil, fmt.Errorf("tcptransport: roster size %d out of range", n)
	}
	addrs = make(map[int]string, n)
	for i := 0; i < n && c.err == nil; i++ {
		orig := int(c.u32())
		live = append(live, orig)
		addrs[orig] = c.str()
	}
	return gen, live, addrs, c.err
}

func encodeHello(gen uint32, orig int, build string) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(orig))
	return appendStr(buf, build)
}

func decodeHello(p []byte) (gen uint32, orig int, build string, err error) {
	c := cursor{p: p}
	gen = c.u32()
	orig = int(c.u32())
	build = c.str()
	return gen, orig, build, c.err
}

// reject answers a handshake with a reason and closes the connection.
func (e *Endpoint) reject(rc rawConn, reason string) {
	_ = rc.c.SetWriteDeadline(time.Now().Add(2 * time.Second))
	if n, err := writeFrame(rc.c, ftReject, []byte(reason), false); err == nil {
		e.met.AddSent(n)
	}
	_ = rc.c.Close()
}

// liveMask returns the original-rank bitmask of the current members.
func (e *Endpoint) liveMask() uint64 {
	var m uint64
	for _, orig := range e.live {
		m |= 1 << uint(orig)
	}
	return m
}

// routeInbound reads one handshake frame off a fresh inbound connection
// (bounded by the connect deadline) and routes it.
func (e *Endpoint) routeInbound(c net.Conn, regCh chan registration, helloCh chan helloConn) {
	rc := newRawConn(c)
	_ = c.SetReadDeadline(time.Now().Add(e.opt.ConnectDeadline))
	typ, payload, wire, err := readFrame(rc.br)
	if err != nil {
		_ = c.Close()
		return
	}
	e.met.AddRecv(wire)
	_ = c.SetReadDeadline(time.Time{})
	e.routeFrame(rc, typ, payload, regCh, helloCh)
}

// routeFrame validates and dispatches one handshake frame. regCh/helloCh
// are non-nil while this endpoint is in its establish phase; frames for the
// next generation are parked as pending for the successor endpoint.
func (e *Endpoint) routeFrame(rc rawConn, typ byte, payload []byte, regCh chan registration, helloCh chan helloConn) {
	switch typ {
	case ftRegister:
		reg, err := decodeRegister(payload)
		if err != nil {
			e.reject(rc, fmt.Sprintf("malformed registration: %v", err))
			return
		}
		reg.rc = rc
		if reg.build != e.opt.BuildTag {
			e.reject(rc, fmt.Sprintf("build tag %q, this job runs %q", reg.build, e.opt.BuildTag))
			return
		}
		if reg.worldSize != e.opt.WorldSize {
			e.reject(rc, fmt.Sprintf("world size %d, this job has %d", reg.worldSize, e.opt.WorldSize))
			return
		}
		switch {
		case reg.gen == e.gen && regCh != nil && e.orig == 0:
			select {
			case regCh <- reg:
			default:
				e.reject(rc, "registration queue overflow")
			}
		case reg.gen == e.gen+1 && e.orig == 0:
			// A survivor shrank before we did: park it for our successor
			// and adopt its failure report now, so our own abort (if it has
			// not tripped yet) happens immediately.
			e.park(pendingConn{rc: rc, typ: typ, payload: payload})
			e.applyDeadMask(reg.deadMask, fmt.Sprintf("reported by orig %d registering for generation %d", reg.orig, reg.gen))
		default:
			e.reject(rc, fmt.Sprintf("not accepting registrations for generation %d (at %d)", reg.gen, e.gen))
		}
	case ftHello:
		gen, orig, build, err := decodeHello(payload)
		if err != nil {
			e.reject(rc, fmt.Sprintf("malformed hello: %v", err))
			return
		}
		if build != e.opt.BuildTag {
			e.reject(rc, fmt.Sprintf("build tag %q, this job runs %q", build, e.opt.BuildTag))
			return
		}
		switch {
		case gen == e.gen && helloCh != nil:
			_ = rc.c.SetWriteDeadline(time.Now().Add(2 * time.Second))
			n, err := writeFrame(rc.c, ftAck, binary.LittleEndian.AppendUint32(nil, gen), false)
			if err != nil {
				_ = rc.c.Close()
				return
			}
			e.met.AddSent(n)
			select {
			case helloCh <- helloConn{orig: orig, rc: rc}:
			default:
				_ = rc.c.Close()
			}
		case gen == e.gen+1:
			e.park(pendingConn{rc: rc, typ: typ, payload: payload})
		default:
			e.reject(rc, fmt.Sprintf("not accepting hellos for generation %d (at %d)", gen, e.gen))
		}
	default:
		_ = rc.c.Close()
	}
}

func (e *Endpoint) park(p pendingConn) {
	e.pendMu.Lock()
	e.pending = append(e.pending, p)
	e.pendMu.Unlock()
}

func (e *Endpoint) takePending() []*pendingConn {
	e.pendMu.Lock()
	defer e.pendMu.Unlock()
	out := make([]*pendingConn, 0, len(e.pending))
	for i := range e.pending {
		p := e.pending[i]
		out = append(out, &p)
	}
	e.pending = nil
	return out
}

// establish runs the rendezvous + mesh for this endpoint's generation:
// registration (or registration collection, on the coordinator), pairwise
// mesh dials, connection adoption and the initial barrier. The whole
// sequence is bounded by deadline. inherited carries handshakes that
// arrived at the previous generation's listener early.
func (e *Endpoint) establish(deadline time.Time, inherited []*pendingConn) error {
	regCh := make(chan registration, maxWorldSize)
	helloCh := make(chan helloConn, maxWorldSize)
	e.host.setSink(func(c net.Conn) { e.routeInbound(c, regCh, helloCh) })
	for _, p := range inherited {
		go e.routeFrame(p.rc, p.typ, p.payload, regCh, helloCh)
	}

	conns := make(map[int]rawConn) // by original rank
	addrs := map[int]string{e.orig: e.Addr()}
	if e.orig == 0 {
		if err := e.collectRegistrations(deadline, regCh, conns, addrs); err != nil {
			return err
		}
	} else {
		if err := e.register(deadline, conns, addrs); err != nil {
			return err
		}
		if err := e.mesh(deadline, helloCh, conns, addrs); err != nil {
			return err
		}
	}
	e.adopt(conns)
	e.host.setSink(func(c net.Conn) { e.routeInbound(c, nil, nil) })
	if err := e.Rendezvous(nil); err != nil {
		return fmt.Errorf("tcptransport: generation %d ready barrier: %w", e.gen, err)
	}
	e.opt.logf("tcptransport: rank %d (orig %d) generation %d live: %d member(s)", e.rank, e.orig, e.gen, e.size)
	return nil
}

// collectRegistrations is the coordinator half of the handshake: wait for
// exactly the expected survivors, validate their failure reports against
// the membership this generation was built over, seal and send the roster.
func (e *Endpoint) collectRegistrations(deadline time.Time, regCh chan registration, conns map[int]rawConn, addrs map[int]string) error {
	want := make(map[int]bool)
	for _, orig := range e.live {
		if orig != e.orig {
			want[orig] = true
		}
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for len(want) > 0 {
		select {
		case reg := <-regCh:
			if reg.deadMask&e.liveMask() != 0 {
				e.reject(reg.rc, "inconsistent membership: your dead set names a live member")
				return fmt.Errorf("tcptransport: orig %d reports dead mask %#x overlapping live members %#x — views diverged, cannot re-mesh",
					reg.orig, reg.deadMask, e.liveMask())
			}
			if !want[reg.orig] {
				e.reject(reg.rc, fmt.Sprintf("rank %d is not an expected member of generation %d", reg.orig, e.gen))
				continue
			}
			delete(want, reg.orig)
			conns[reg.orig] = reg.rc
			addrs[reg.orig] = reg.addr
		case <-timer.C:
			missing := make([]int, 0, len(want))
			for orig := range want {
				missing = append(missing, orig)
			}
			return fmt.Errorf("tcptransport: generation %d: rank(s) %v did not register within %v",
				e.gen, missing, e.opt.ConnectDeadline)
		}
	}
	roster := encodeRoster(e.gen, e.live, addrs)
	for orig, rc := range conns {
		_ = rc.c.SetWriteDeadline(time.Now().Add(minDuration(10*time.Second, time.Until(deadline))))
		n, err := writeFrame(rc.c, ftRoster, roster, false)
		if err != nil {
			return fmt.Errorf("tcptransport: sending roster to orig %d: %w", orig, err)
		}
		e.met.AddSent(n)
	}
	return nil
}

// register is the member half: dial the coordinator (retrying whole
// attempts — a connection dropped during the handshake window is redialed,
// a rejection is fatal) and hold the connection as the coordinator link.
func (e *Endpoint) register(deadline time.Time, conns map[int]rawConn, addrs map[int]string) error {
	payload := encodeRegister(e.gen, e.orig, e.opt.WorldSize, e.opt.BuildTag, e.Addr(), e.deadMask)
	var lastErr error
	for attempt := 0; time.Now().Before(deadline); attempt++ {
		if attempt > 0 {
			e.met.IncReconnect()
			time.Sleep(minDuration(100*time.Millisecond, time.Until(deadline)))
		}
		c, err := dialRetry(&e.opt, e.met, e.opt.CoordinatorAddr, deadline)
		if err != nil {
			return err
		}
		rc := newRawConn(c)
		_ = c.SetWriteDeadline(time.Now().Add(minDuration(10*time.Second, time.Until(deadline))))
		if n, err := writeFrame(c, ftRegister, payload, false); err != nil {
			lastErr = err
			_ = c.Close()
			continue
		} else {
			e.met.AddSent(n)
		}
		_ = c.SetReadDeadline(deadline)
		typ, body, wire, err := readFrame(rc.br)
		if err != nil {
			// The coordinator may be mid-shrink (listener sink swapped) —
			// redial unless the overall deadline has passed.
			lastErr = err
			_ = c.Close()
			continue
		}
		e.met.AddRecv(wire)
		_ = c.SetReadDeadline(time.Time{})
		switch typ {
		case ftReject:
			_ = c.Close()
			return fmt.Errorf("tcptransport: coordinator rejected rank %d (orig) for generation %d: %s", e.orig, e.gen, body)
		case ftRoster:
			gen, live, rosterAddrs, derr := decodeRoster(body)
			if derr != nil || gen != e.gen {
				_ = c.Close()
				return fmt.Errorf("tcptransport: bad roster for generation %d: %v", e.gen, derr)
			}
			if !equalInts(live, e.live) {
				_ = c.Close()
				return fmt.Errorf("tcptransport: membership mismatch: coordinator sealed %v, this rank expected %v — views diverged", live, e.live)
			}
			for orig, addr := range rosterAddrs {
				addrs[orig] = addr
			}
			conns[0] = rc
			return nil
		default:
			lastErr = fmt.Errorf("unexpected frame type %d awaiting roster", typ)
			_ = c.Close()
			continue
		}
	}
	return fmt.Errorf("tcptransport: registering with coordinator %s for generation %d: deadline exceeded: %w",
		e.opt.CoordinatorAddr, e.gen, lastErr)
}

// mesh completes the pairwise links: dial every lower-ranked member (except
// the coordinator, already connected) with hello/ack, and accept hellos
// from every higher-ranked member.
func (e *Endpoint) mesh(deadline time.Time, helloCh chan helloConn, conns map[int]rawConn, addrs map[int]string) error {
	var expectHigher int
	for _, orig := range e.live {
		switch {
		case orig > e.orig:
			expectHigher++
		case orig != 0 && orig < e.orig:
			rc, err := e.dialPeer(orig, addrs[orig], deadline)
			if err != nil {
				return err
			}
			conns[orig] = rc
		}
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for have := 0; have < expectHigher; {
		select {
		case h := <-helloCh:
			if _, dup := conns[h.orig]; dup || h.orig <= e.orig {
				_ = h.rc.c.Close()
				continue
			}
			conns[h.orig] = h.rc
			have++
		case <-timer.C:
			var missing []int
			for _, orig := range e.live {
				if orig > e.orig {
					if _, ok := conns[orig]; !ok {
						missing = append(missing, orig)
					}
				}
			}
			return fmt.Errorf("tcptransport: generation %d mesh: no hello from rank(s) %v within %v",
				e.gen, missing, e.opt.ConnectDeadline)
		}
	}
	return nil
}

// dialPeer connects to one lower-ranked member, retrying whole hello/ack
// attempts under the deadline.
func (e *Endpoint) dialPeer(orig int, addr string, deadline time.Time) (rawConn, error) {
	if addr == "" {
		return rawConn{}, fmt.Errorf("tcptransport: no address for orig rank %d in roster", orig)
	}
	hello := encodeHello(e.gen, e.orig, e.opt.BuildTag)
	var lastErr error
	for attempt := 0; time.Now().Before(deadline); attempt++ {
		if attempt > 0 {
			e.met.IncReconnect()
			time.Sleep(minDuration(100*time.Millisecond, time.Until(deadline)))
		}
		c, err := dialRetry(&e.opt, e.met, addr, deadline)
		if err != nil {
			return rawConn{}, err
		}
		rc := newRawConn(c)
		_ = c.SetWriteDeadline(time.Now().Add(minDuration(10*time.Second, time.Until(deadline))))
		if n, werr := writeFrame(c, ftHello, hello, false); werr != nil {
			lastErr = werr
			_ = c.Close()
			continue
		} else {
			e.met.AddSent(n)
		}
		_ = c.SetReadDeadline(deadline)
		typ, body, wire, rerr := readFrame(rc.br)
		if rerr != nil {
			lastErr = rerr
			_ = c.Close()
			continue
		}
		e.met.AddRecv(wire)
		_ = c.SetReadDeadline(time.Time{})
		switch typ {
		case ftAck:
			return rc, nil
		case ftReject:
			_ = c.Close()
			return rawConn{}, fmt.Errorf("tcptransport: orig %d rejected mesh hello: %s", orig, body)
		default:
			lastErr = fmt.Errorf("unexpected frame type %d awaiting ack", typ)
			_ = c.Close()
		}
	}
	return rawConn{}, fmt.Errorf("tcptransport: meshing with orig %d at %s: deadline exceeded: %w", orig, addr, lastErr)
}

// adopt turns the handshake connections into live peer links with their
// reader/writer goroutines.
func (e *Endpoint) adopt(conns map[int]rawConn) {
	e.conns = make([]*peerConn, e.size)
	e.inbox = make([]chan transport.Message, e.size)
	e.barCh = make([]chan barToken, e.size)
	for dense, orig := range e.live {
		if orig == e.orig {
			continue
		}
		rc := conns[orig]
		pc := &peerConn{
			ep:    e,
			dense: dense,
			orig:  orig,
			c:     rc.c,
			br:    rc.br,
			ctrl:  make(chan wireFrame, 16),
			data:  make(chan wireFrame, 4*e.size+8),
		}
		e.conns[dense] = pc
		e.inbox[dense] = make(chan transport.Message, 4*e.size+8)
		e.barCh[dense] = make(chan barToken, 8)
		e.wg.Add(2)
		go pc.readLoop()
		go pc.writeLoop()
	}
}

// Shrink implements transport.Shrinker: it consumes this endpoint and
// re-meshes the survivors as generation+1, renumbered densely. dead lists
// dense ranks of this generation; ranks this endpoint already knows dead
// are unioned in. The coordinator's death is unrecoverable (there is no
// leader election — kgetrain restarts the job from the last checkpoint
// instead), as is being named dead oneself (the peers have moved on).
// Additional failures discovered during the re-mesh window surface as
// errors, not silent membership changes, so the mpi layer's view of the
// world and the transport's can never diverge.
func (e *Endpoint) Shrink(dead []int) (transport.Endpoint, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("tcptransport: Shrink on a closed endpoint")
	}
	deadSet := make(map[int]bool, len(dead))
	for _, d := range dead {
		if d < 0 || d >= e.size {
			return nil, fmt.Errorf("tcptransport: Shrink rank %d out of range [0,%d)", d, e.size)
		}
		deadSet[d] = true
	}
	for _, d := range e.fs.Failed() {
		deadSet[d] = true
	}
	if len(deadSet) == 0 {
		return nil, fmt.Errorf("tcptransport: Shrink needs at least one dead rank")
	}
	if deadSet[e.rank] {
		return nil, fmt.Errorf("tcptransport: rank %d (orig %d) was declared dead by its peers; it cannot rejoin", e.rank, e.orig)
	}
	if len(deadSet) >= e.size {
		return nil, fmt.Errorf("tcptransport: Shrink would leave no survivors")
	}
	var deadOrigMask uint64
	newLive := make([]int, 0, e.size-len(deadSet))
	for dense, orig := range e.live {
		if deadSet[dense] {
			if orig == 0 {
				return nil, fmt.Errorf("tcptransport: the coordinator (original rank 0) died; re-mesh is impossible — restart the job from the last checkpoint")
			}
			deadOrigMask |= 1 << uint(orig)
			continue
		}
		newLive = append(newLive, orig)
	}
	// Best-effort regroup so survivors that have not noticed yet abort now
	// rather than at their watchdog. The writers drain control queues on
	// teardown, so these reach the wire before the byes.
	frame := binary.LittleEndian.AppendUint64(nil, deadOrigMask)
	for d, pc := range e.conns {
		if pc == nil || deadSet[d] {
			continue
		}
		select {
		case pc.ctrl <- wireFrame{typ: ftRegroup, payload: frame}:
		default:
		}
	}
	e.host.setSink(nil)
	pend := e.takePending()
	e.teardown(false)
	e.hostOwner = false

	succ := newEndpoint(e.opt, e.host, e.met, e.gen+1, e.orig, newLive)
	succ.deadMask = e.deadMask | deadOrigMask
	deadline := time.Now().Add(e.opt.ConnectDeadline)
	if err := succ.establish(deadline, pend); err != nil {
		e.host.close()
		for _, p := range pend {
			_ = p.rc.c.Close()
		}
		return nil, err
	}
	return succ, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
