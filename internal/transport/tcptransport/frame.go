package tcptransport

// Wire format. Every frame is length-prefixed and CRC-checked:
//
//	offset  size  field
//	0       2     magic 0x444B ("KD", little-endian)
//	2       1     protocol version
//	3       1     frame type
//	4       4     payload length (little-endian)
//	8       n     payload
//	8+n     4     CRC32 (IEEE) over header + payload
//
// A frame that fails magic, version, length-bound or checksum validation is
// never delivered: the reader declares the connection's peer failed (a
// corrupted stream cannot be resynchronized, and a version mismatch means
// the processes were built from different wire revisions). Payload layouts
// are decoded through a bounds-checked cursor, so a malformed payload from a
// foreign dialer surfaces as an error, never a panic.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"kgedist/internal/transport"
)

// ProtocolVersion is carried in every frame header and validated during the
// rendezvous handshake: processes speaking different wire revisions refuse
// to mesh instead of misinterpreting each other's bytes.
const ProtocolVersion = 1

const (
	frameMagic = 0x444B // "KD"
	headerLen  = 8
	trailerLen = 4
	// maxPayload bounds a single frame so a corrupted or hostile length
	// prefix cannot trigger a gigantic allocation.
	maxPayload = 1 << 30
)

// Frame types.
const (
	ftRegister = 1  // dialer -> coordinator: join a generation
	ftRoster   = 2  // coordinator -> member: sealed membership of a generation
	ftHello    = 3  // mesh dial: higher original rank -> lower
	ftAck      = 4  // mesh accept confirmation
	ftReject   = 5  // handshake refusal; payload is the reason
	ftData     = 6  // collective point-to-point message
	ftBarrier  = 7  // dissemination-barrier token
	ftPing     = 8  // heartbeat request; payload echoes back in the pong
	ftPong     = 9  // heartbeat reply
	ftBye      = 10 // clean shutdown notice (departure, not failure)
	ftRegroup  = 11 // failure notice: original-rank dead set
)

// errCRC marks a frame rejected by checksum — surfaced separately so the
// reader can count it as corruption rather than a generic stream error.
var errCRC = errors.New("tcptransport: frame checksum mismatch")

// writeFrame writes one frame and returns the wire bytes moved. corrupt
// flips one payload bit after the checksum is computed (the fault-injection
// seam behind Endpoint.Inject(FaultCorrupt, ...)); the caller's payload is
// copied first so only the wire image is damaged.
func writeFrame(w io.Writer, typ byte, payload []byte, corrupt bool) (int64, error) {
	if len(payload) > maxPayload {
		return 0, fmt.Errorf("tcptransport: frame payload %d exceeds %d-byte bound", len(payload), maxPayload)
	}
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint16(hdr[0:2], frameMagic)
	hdr[2] = ProtocolVersion
	hdr[3] = typ
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if corrupt {
		if len(payload) > 0 {
			damaged := append([]byte(nil), payload...)
			damaged[len(damaged)/2] ^= 0x80
			payload = damaged
		} else {
			crc = ^crc
		}
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], crc)
	if _, err := w.Write(tr[:]); err != nil {
		return 0, err
	}
	return int64(headerLen + len(payload) + trailerLen), nil
}

// readFrame reads and validates one frame.
func readFrame(r io.Reader) (typ byte, payload []byte, wire int64, err error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	if got := binary.LittleEndian.Uint16(hdr[0:2]); got != frameMagic {
		return 0, nil, 0, fmt.Errorf("tcptransport: bad frame magic %#04x", got)
	}
	if hdr[2] != ProtocolVersion {
		return 0, nil, 0, fmt.Errorf("tcptransport: protocol version %d, this build speaks %d", hdr[2], ProtocolVersion)
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxPayload {
		return 0, nil, 0, fmt.Errorf("tcptransport: frame payload %d exceeds %d-byte bound", n, maxPayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, err
	}
	var tr [trailerLen]byte
	if _, err := io.ReadFull(r, tr[:]); err != nil {
		return 0, nil, 0, err
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if binary.LittleEndian.Uint32(tr[:]) != crc {
		return 0, nil, 0, errCRC
	}
	return hdr[3], payload, int64(headerLen) + int64(n) + trailerLen, nil
}

// Message payload presence flags.
const (
	flagF32 = 1 << iota
	flagI32
	flagRaw
	flagF64
)

// appendMessage serializes m onto buf (reused writer scratch) and returns
// the extended slice. Layout: flags(1) seq(8), then each present payload as
// count(4) + little-endian elements (F64 is a bare 8-byte value).
func appendMessage(buf []byte, m transport.Message) []byte {
	var flags byte
	if m.F32 != nil {
		flags |= flagF32
	}
	if m.I32 != nil {
		flags |= flagI32
	}
	if m.Raw != nil {
		flags |= flagRaw
	}
	if m.F64 != 0 {
		flags |= flagF64
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	if m.F32 != nil {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.F32)))
		for _, v := range m.F32 {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	if m.I32 != nil {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.I32)))
		for _, v := range m.I32 {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	if m.Raw != nil {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Raw)))
		buf = append(buf, m.Raw...)
	}
	if flags&flagF64 != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.F64))
	}
	return buf
}

// decodeMessage parses a data payload into freshly allocated slices (the
// receiver owns them outright, satisfying mpi's all-gather freshness
// contract by construction).
func decodeMessage(p []byte) (transport.Message, error) {
	c := cursor{p: p}
	var m transport.Message
	flags := c.u8()
	m.Seq = c.u64()
	if flags&flagF32 != 0 {
		n := int(c.u32())
		if c.err == nil && n >= 0 && 4*n <= c.remaining() {
			m.F32 = make([]float32, n)
			for i := range m.F32 {
				m.F32[i] = math.Float32frombits(c.u32())
			}
		} else {
			c.fail()
		}
	}
	if flags&flagI32 != 0 {
		n := int(c.u32())
		if c.err == nil && n >= 0 && 4*n <= c.remaining() {
			m.I32 = make([]int32, n)
			for i := range m.I32 {
				m.I32[i] = int32(c.u32())
			}
		} else {
			c.fail()
		}
	}
	if flags&flagRaw != 0 {
		n := int(c.u32())
		m.Raw = append([]byte(nil), c.bytes(n)...)
	}
	if flags&flagF64 != 0 {
		m.F64 = math.Float64frombits(c.u64())
	}
	if c.err != nil {
		return transport.Message{}, c.err
	}
	return m, nil
}

// cursor is a bounds-checked payload reader: any out-of-range access sets
// err and subsequent reads return zeros, so decoders can validate once at
// the end instead of threading errors through every field.
type cursor struct {
	p   []byte
	off int
	err error
}

var errTruncated = errors.New("tcptransport: truncated frame payload")

func (c *cursor) remaining() int { return len(c.p) - c.off }

func (c *cursor) fail() {
	if c.err == nil {
		c.err = errTruncated
	}
}

func (c *cursor) bytes(n int) []byte {
	if c.err != nil || n < 0 || c.off+n > len(c.p) {
		c.fail()
		return nil
	}
	b := c.p[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u8() byte {
	b := c.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u32() uint32 {
	b := c.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) str() string {
	n := int(c.u32())
	return string(c.bytes(n))
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}
