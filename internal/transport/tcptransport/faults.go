package tcptransport

// Fault injection for tests: the same sever/stall/corrupt vocabulary the
// simnet FaultPlan speaks, applied to real sockets. Faults are injected on
// the victim's *own* endpoint (it sabotages its side of a connection), so
// the interesting machinery — the peer's deadline, checksum and EOF
// detectors — runs unmodified production code.

import "fmt"

// Fault selects a failure mode for Inject.
type Fault int

const (
	// FaultSever closes the raw connection to a peer mid-stream, as a
	// crashed process or dropped link would. The peer sees EOF/ECONNRESET.
	FaultSever Fault = iota
	// FaultStall freezes the outbound half of a connection — data frames
	// and heartbeats stop, but the socket stays open. The peer's rolling
	// read deadline, not the OS, must detect the silence.
	FaultStall
	// FaultCorrupt flips one bit in the next outbound data frame after its
	// checksum is computed. The peer's CRC validation must reject the frame
	// and condemn this rank.
	FaultCorrupt
)

func (f Fault) String() string {
	switch f {
	case FaultSever:
		return "sever"
	case FaultStall:
		return "stall"
	case FaultCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// Inject applies a fault to this endpoint's connection to the given dense
// peer rank. It panics on an invalid peer so a miswired test fails loudly.
func (e *Endpoint) Inject(f Fault, peer int) {
	if peer < 0 || peer >= e.size || peer == e.rank {
		panic(fmt.Sprintf("tcptransport: Inject(%v, %d): invalid peer for rank %d of %d", f, peer, e.rank, e.size))
	}
	pc := e.conns[peer]
	if pc == nil {
		panic(fmt.Sprintf("tcptransport: Inject(%v, %d): no connection", f, peer))
	}
	switch f {
	case FaultSever:
		pc.close()
	case FaultStall:
		pc.stalled.Store(true)
	case FaultCorrupt:
		pc.corrupt.Store(true)
	default:
		panic(fmt.Sprintf("tcptransport: unknown fault %d", int(f)))
	}
}
