package tcptransport

import (
	"bytes"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"kgedist/internal/transport"
)

// watchdog fails the test with a goroutine dump if fn hangs — these tests
// exercise exactly the paths whose failure mode is a silent hang.
func watchdog(t *testing.T, name string, timeout time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("%s: hung for %v; goroutine dump:\n%s", name, timeout, buf[:n])
	}
}

// --- wire format ---

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 1<<16)}
	for i, p := range payloads {
		var buf bytes.Buffer
		wrote, err := writeFrame(&buf, ftData, p, false)
		if err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		typ, got, read, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("case %d: read: %v", i, err)
		}
		if typ != ftData || !bytes.Equal(got, p) || wrote != read {
			t.Fatalf("case %d: typ %d len %d wire %d/%d", i, typ, len(got), wrote, read)
		}
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	for _, payload := range [][]byte{nil, []byte("some payload bytes")} {
		var buf bytes.Buffer
		if _, err := writeFrame(&buf, ftData, payload, true); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, _, _, err := readFrame(&buf); !errors.Is(err, errCRC) {
			t.Fatalf("payload len %d: got %v, want errCRC", len(payload), err)
		}
	}
}

func TestFrameRejectsBadHeader(t *testing.T) {
	var good bytes.Buffer
	if _, err := writeFrame(&good, ftData, []byte("ok"), false); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mangle func(b []byte)
		want   string
	}{
		{"magic", func(b []byte) { b[0] = 0xFF }, "magic"},
		{"version", func(b []byte) { b[2] = ProtocolVersion + 1 }, "protocol version"},
		{"length", func(b []byte) { b[4], b[5], b[6], b[7] = 0xFF, 0xFF, 0xFF, 0xFF }, "exceeds"},
	}
	for _, tc := range cases {
		raw := append([]byte(nil), good.Bytes()...)
		tc.mangle(raw)
		_, _, _, err := readFrame(bytes.NewReader(raw))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestMessageCodec(t *testing.T) {
	msgs := []transport.Message{
		{},
		{Seq: 7, F32: []float32{1.5, -2.25}},
		{Seq: 8, I32: []int32{-1, 0, 1 << 30}},
		{Seq: 9, Raw: []byte{0, 1, 2}},
		{Seq: 10, F64: -0.125},
		{Seq: 11, F32: []float32{3}, I32: []int32{4}, Raw: []byte{5}, F64: 6},
	}
	for i, m := range msgs {
		got, err := decodeMessage(appendMessage(nil, m))
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got.Seq != m.Seq || got.F64 != m.F64 ||
			len(got.F32) != len(m.F32) || len(got.I32) != len(m.I32) || len(got.Raw) != len(m.Raw) {
			t.Fatalf("msg %d: round-trip mismatch: %+v vs %+v", i, got, m)
		}
		for j := range m.F32 {
			if got.F32[j] != m.F32[j] {
				t.Fatalf("msg %d: F32[%d] %v != %v", i, j, got.F32[j], m.F32[j])
			}
		}
	}
	// Truncation at every prefix must error, never panic or misdecode.
	full := appendMessage(nil, msgs[5])
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeMessage(full[:cut]); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", cut, len(full))
		}
	}
}

// --- dial helpers ---

// listeners pre-binds p localhost listeners so every test knows the
// coordinator address before any endpoint dials.
func listeners(t *testing.T, p int) []net.Listener {
	t.Helper()
	lns := make([]net.Listener, p)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
	}
	return lns
}

func testOptions(rank, p int, lns []net.Listener) Options {
	return Options{
		Rank:              rank,
		WorldSize:         p,
		CoordinatorAddr:   lns[0].Addr().String(),
		Listener:          lns[rank],
		ConnectDeadline:   30 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
	}
}

// dialWorld brings up a full in-process world.
func dialWorld(t *testing.T, p int, mutate func(rank int, o *Options)) []*Endpoint {
	t.Helper()
	lns := listeners(t, p)
	eps := make([]*Endpoint, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := testOptions(i, p, lns)
			if mutate != nil {
				mutate(i, &o)
			}
			eps[i], errs[i] = Dial(o)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("dial rank %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		watchdog(t, "world close", 20*time.Second, func() {
			var cwg sync.WaitGroup
			for _, ep := range eps {
				if ep == nil {
					continue
				}
				cwg.Add(1)
				go func(ep *Endpoint) {
					defer cwg.Done()
					_ = ep.Close()
				}(ep)
			}
			cwg.Wait()
		})
	})
	return eps
}

// --- handshake validation ---

// TestHandshakeRejects drives each misconfiguration through a real
// coordinator and asserts the dialer is refused with a reason naming the
// mismatch — never meshed, never hung.
func TestHandshakeRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(o *Options)
		want   string
	}{
		{"build tag", func(o *Options) { o.BuildTag = "stale-binary" }, "build tag"},
		{"world size", func(o *Options) { o.WorldSize = 3 }, "world size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			watchdog(t, tc.name, 30*time.Second, func() {
				lns := listeners(t, 2)
				var wg sync.WaitGroup
				var coordEp *Endpoint
				wg.Add(1)
				go func() {
					defer wg.Done()
					o := testOptions(0, 2, lns)
					o.ConnectDeadline = 4 * time.Second
					coordEp, _ = Dial(o) // fails too: its expected peer never joins
				}()
				o := testOptions(1, 2, lns)
				o.ConnectDeadline = 4 * time.Second
				tc.mutate(&o)
				ep, err := Dial(o)
				if err == nil {
					_ = ep.Close()
					t.Fatalf("misconfigured dial succeeded")
				}
				if !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("got %v, want error containing %q", err, tc.want)
				}
				wg.Wait()
				if coordEp != nil {
					_ = coordEp.Close()
				}
			})
		})
	}
}

// TestHandshakeRejectsImpostorRank: a registration claiming a rank outside
// the expected membership (a stale worker from a previous job, a double
// launch) is refused by name, and the impostor reads the reason.
func TestHandshakeRejectsImpostorRank(t *testing.T) {
	watchdog(t, "impostor rank", 30*time.Second, func() {
		lns := listeners(t, 2)
		coordErr := make(chan error, 1)
		go func() {
			o := testOptions(0, 2, lns)
			o.ConnectDeadline = 4 * time.Second
			ep, err := Dial(o) // real rank 1 never joins, so this errors too
			if ep != nil {
				_ = ep.Close()
			}
			coordErr <- err
		}()
		c, err := net.Dial("tcp", lns[0].Addr().String())
		if err != nil {
			t.Fatalf("impostor dial: %v", err)
		}
		defer c.Close()
		reg := encodeRegister(0, 7, 2, "dev", "127.0.0.1:1", 0)
		if _, err := writeFrame(c, ftRegister, reg, false); err != nil {
			t.Fatalf("impostor register: %v", err)
		}
		_ = c.SetReadDeadline(time.Now().Add(10 * time.Second))
		typ, payload, _, err := readFrame(c)
		if err != nil || typ != ftReject {
			t.Fatalf("impostor answer: typ %d err %v, want ftReject", typ, err)
		}
		if !strings.Contains(string(payload), "not an expected member") {
			t.Fatalf("reject reason %q", payload)
		}
		if err := <-coordErr; err == nil || !strings.Contains(err.Error(), "did not register") {
			t.Fatalf("coordinator: got %v, want missing-registrant error", err)
		}
	})
}

// TestRendezvousTimeouts is the table for the latent-watchdog fix: every
// flavor of "a peer never shows up during the connect/handshake window"
// must surface as a bounded error naming the missing party — before this
// deadline existed, each of these scenarios hung forever.
func TestRendezvousTimeouts(t *testing.T) {
	const deadline = 2 * time.Second
	cases := []struct {
		name string
		run  func(t *testing.T, lns []net.Listener) error
		want string
	}{
		{
			// The coordinator address answers nothing: rank 1's register can
			// never complete.
			name: "missing coordinator",
			run: func(t *testing.T, lns []net.Listener) error {
				o := testOptions(1, 2, lns)
				o.ConnectDeadline = deadline
				_ = lns[0].Close() // nobody home at the coordinator address
				ep, err := Dial(o)
				if ep != nil {
					_ = ep.Close()
				}
				return err
			},
			want: "deadline exceeded",
		},
		{
			// The coordinator waits for a rank that never registers.
			name: "missing registrant",
			run: func(t *testing.T, lns []net.Listener) error {
				o := testOptions(0, 2, lns)
				o.ConnectDeadline = deadline
				ep, err := Dial(o)
				if ep != nil {
					_ = ep.Close()
				}
				return err
			},
			want: "did not register",
		},
		{
			// A rank registers (so the roster seals) but never sends its mesh
			// hello: the peer awaiting it must time out, not block.
			name: "missing hello",
			run: func(t *testing.T, lns []net.Listener) error {
				errCh := make(chan error, 1)
				go func() { // rank 1: the victim awaiting rank 2's hello
					o := testOptions(1, 3, lns)
					o.ConnectDeadline = deadline
					ep, err := Dial(o)
					if ep != nil {
						_ = ep.Close()
					}
					errCh <- err
				}()
				go func() { // coordinator
					o := testOptions(0, 3, lns)
					o.ConnectDeadline = deadline
					ep, err := Dial(o)
					if ep != nil {
						_ = ep.Close()
					}
					if err == nil {
						t.Error("coordinator completed with a rank that never meshed")
					}
				}()
				// Fake rank 2: registers correctly, reads the roster, then
				// goes silent instead of meshing.
				c, err := net.Dial("tcp", lns[0].Addr().String())
				if err != nil {
					t.Fatalf("fake rank 2 dial: %v", err)
				}
				defer c.Close()
				reg := encodeRegister(0, 2, 3, "dev", lns[2].Addr().String(), 0)
				if _, err := writeFrame(c, ftRegister, reg, false); err != nil {
					t.Fatalf("fake rank 2 register: %v", err)
				}
				_ = c.SetReadDeadline(time.Now().Add(deadline))
				if typ, _, _, err := readFrame(c); err != nil || typ != ftRoster {
					t.Fatalf("fake rank 2 roster: typ %d err %v", typ, err)
				}
				return <-errCh
			},
			want: "no hello from rank(s) [2]",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			watchdog(t, tc.name, 30*time.Second, func() {
				start := time.Now()
				err := tc.run(t, listeners(t, 3))
				if err == nil {
					t.Fatalf("dial succeeded with a missing peer")
				}
				if !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("got %v, want error containing %q", err, tc.want)
				}
				// Bounded: the deadline plus scheduling slack, not forever.
				if elapsed := time.Since(start); elapsed > deadline+10*time.Second {
					t.Fatalf("error took %v, far past the %v deadline", elapsed, deadline)
				}
			})
		})
	}
}

// --- fault injection ---

// TestFaultInjection drives each real-socket failure mode and asserts the
// victim's peers reach the same typed verdict the simnet fault plans
// produce, with the right detector credited in the metrics.
func TestFaultInjection(t *testing.T) {
	cases := []struct {
		name    string
		fault   Fault
		metric  func(m *transport.Metrics) int64
		detects string
	}{
		{"sever", FaultSever, nil, "connection close"},
		{"stall", FaultStall, func(m *transport.Metrics) int64 { return m.HeartbeatMisses.Value() }, "read deadline"},
		{"corrupt", FaultCorrupt, func(m *transport.Metrics) int64 { return m.CRCErrors.Value() }, "checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eps := dialWorld(t, 3, nil)
			watchdog(t, tc.name, 30*time.Second, func() {
				// Rank 1 sabotages its link to rank 0, then (for corrupt)
				// sends the frame that carries the damage.
				eps[1].Inject(tc.fault, 0)
				if tc.fault == FaultCorrupt {
					if err := eps[1].Send(0, transport.Message{Seq: 1, F32: []float32{1, 2, 3}}); err != nil {
						t.Fatalf("send: %v", err)
					}
				}
				// Rank 0 blocks on a receive; the fault must surface as the
				// typed failure, not a hang or a mangled message.
				_, err := eps[0].Recv(1, 20*time.Second)
				var rfe *transport.RankFailedError
				if !errors.As(err, &rfe) {
					t.Fatalf("recv returned %v, want *RankFailedError", err)
				}
				found := false
				for _, r := range rfe.Ranks {
					if r == 1 {
						found = true
					}
				}
				if !found {
					t.Fatalf("dead set %v does not name rank 1", rfe.Ranks)
				}
				if tc.metric != nil {
					if got := tc.metric(eps[0].Metrics()); got < 1 {
						t.Errorf("%s detector metric is %d, want >= 1", tc.detects, got)
					}
				}
			})
		})
	}
}

// --- shrink / re-mesh ---

// TestShrinkRemesh kills one rank for real (connection close), lets the
// survivors reach the shared verdict, re-meshes them as generation 1, and
// proves the new fabric moves traffic and barriers.
func TestShrinkRemesh(t *testing.T) {
	eps := dialWorld(t, 3, nil)
	watchdog(t, "shrink remesh", 60*time.Second, func() {
		// Rank 2 "crashes": its connections drop without byes.
		eps[2].Inject(FaultSever, 0)
		eps[2].Inject(FaultSever, 1)
		// Both survivors observe the failure.
		for _, r := range []int{0, 1} {
			if _, err := eps[r].Recv(2, 10*time.Second); err == nil {
				t.Fatalf("rank %d: recv from severed peer succeeded", r)
			}
		}
		// Re-mesh concurrently (registration blocks until both arrive).
		var wg sync.WaitGroup
		succ := make([]transport.Endpoint, 2)
		errs := make([]error, 2)
		for i, r := range []int{0, 1} {
			wg.Add(1)
			go func(i, r int) {
				defer wg.Done()
				succ[i], errs[i] = eps[r].Shrink([]int{2})
			}(i, r)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("shrink %d: %v", i, err)
			}
		}
		defer succ[0].Close()
		defer succ[1].Close()
		s0 := succ[0].(*Endpoint)
		if s0.Size() != 2 || s0.Generation() != 1 || s0.Rank() != 0 {
			t.Fatalf("successor: size %d gen %d rank %d", s0.Size(), s0.Generation(), s0.Rank())
		}
		// The new fabric works: a message and a barrier.
		if err := succ[0].Send(1, transport.Message{Seq: 9, F64: 2.75}); err != nil {
			t.Fatalf("send on successor: %v", err)
		}
		m, err := succ[1].Recv(0, 10*time.Second)
		if err != nil || m.F64 != 2.75 {
			t.Fatalf("recv on successor: %v %v", m, err)
		}
		barErr := make(chan error, 1)
		go func() { barErr <- succ[1].Rendezvous(nil) }()
		if err := succ[0].Rendezvous(nil); err != nil {
			t.Fatalf("rendezvous on successor: %v", err)
		}
		if err := <-barErr; err != nil {
			t.Fatalf("peer rendezvous on successor: %v", err)
		}
	})
}

// TestShrinkCoordinatorDeath: losing original rank 0 is the documented
// unrecoverable case — Shrink must say so instead of hanging in a doomed
// re-mesh.
func TestShrinkCoordinatorDeath(t *testing.T) {
	eps := dialWorld(t, 2, nil)
	watchdog(t, "coordinator death", 20*time.Second, func() {
		eps[1].FailRank(0)
		_, err := eps[1].Shrink([]int{0})
		if err == nil || !strings.Contains(err.Error(), "coordinator") {
			t.Fatalf("got %v, want coordinator-death error", err)
		}
	})
}

// TestShrinkSelfDead: a rank its peers declared dead must not rejoin.
func TestShrinkSelfDead(t *testing.T) {
	eps := dialWorld(t, 2, nil)
	watchdog(t, "self dead", 20*time.Second, func() {
		eps[0].FailRank(1)
		if _, err := eps[1].Shrink([]int{1}); err == nil || !strings.Contains(err.Error(), "declared dead") {
			t.Fatalf("got %v, want self-dead error", err)
		}
	})
}

// --- health metrics ---

// TestMetricsFlow: traffic and heartbeats feed the counters and the RTT
// histogram, and the Prometheus rendering carries them all.
func TestMetricsFlow(t *testing.T) {
	eps := dialWorld(t, 2, nil)
	watchdog(t, "metrics", 30*time.Second, func() {
		if err := eps[0].Send(1, transport.Message{Seq: 1, F32: make([]float32, 1024)}); err != nil {
			t.Fatalf("send: %v", err)
		}
		if _, err := eps[1].Recv(0, 10*time.Second); err != nil {
			t.Fatalf("recv: %v", err)
		}
		// A few heartbeat intervals so pings and pongs flow.
		time.Sleep(150 * time.Millisecond)
		m := eps[0].Metrics()
		if m.FramesSent.Value() == 0 || m.FramesRecv.Value() == 0 {
			t.Fatalf("frame counters empty: sent %d recv %d", m.FramesSent.Value(), m.FramesRecv.Value())
		}
		if m.BytesSent.Value() < 4*1024 {
			t.Fatalf("bytes sent %d, want at least the 4KiB payload", m.BytesSent.Value())
		}
		var buf bytes.Buffer
		m.WritePrometheus(&buf)
		out := buf.String()
		for _, want := range []string{
			"kgedist_transport_bytes_sent_total",
			"kgedist_transport_frames_received_total",
			`kgedist_transport_heartbeat_rtt_seconds_bucket{peer="1",le="+Inf"}`,
		} {
			if !strings.Contains(out, want) {
				t.Errorf("Prometheus output missing %q", want)
			}
		}
	})
}
