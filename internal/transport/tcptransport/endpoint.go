// Package tcptransport is the multi-process TCP backend of the transport
// interface: every rank is a real OS process, links are TCP connections
// carrying length-prefixed CRC-checked frames, and liveness is tracked with
// application-level heartbeats. It is robustness-first by construction:
//
//   - Rendezvous handshake: every process dials the coordinator (original
//     rank 0), which validates world size, rank identity, build tag and
//     protocol version before sealing the membership roster — a
//     misconfigured or mismatched process is rejected, never meshed.
//   - Dial retry with capped exponential backoff and jitter, under a hard
//     connect/handshake deadline, so a slow-starting peer is tolerated and
//     a missing one is a bounded error instead of an unbounded hang.
//   - Per-connection read and write deadlines: a peer that stops producing
//     frames (even TCP keepalive-level silence) trips the reader's deadline
//     and is declared failed; a peer that stops consuming trips the
//     writer's deadline.
//   - Heartbeats: each connection's writer pings on an interval and the
//     pong round-trip feeds a per-peer RTT histogram, so a silent-but-open
//     connection is detected in HeartbeatTimeout, far below mpi's recv
//     watchdog backstop.
//   - Connection loss — dropped, severed, checksum-corrupted or timed out —
//     surfaces as the same typed *transport.RankFailedError the simnet
//     fault plans produce, so World.Shrink and checkpoint recovery work
//     unmodified on real socket failures.
//
// Failure taxonomy (socket event -> verdict): read/write timeout, EOF,
// ECONNRESET and friends on a live peer's connection => that peer is failed;
// a CRC mismatch => the sending peer is failed (the stream cannot be
// resynchronized); an ftRegroup frame => the named ranks are failed; an
// ftBye frame => clean departure, never a failure. All verdicts trip the
// shared abort so every blocked operation returns the same error.
package tcptransport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kgedist/internal/transport"
	"kgedist/internal/xrand"
)

// Default tuning. All are overridable per Options; tests shrink them to
// keep fault detection fast, production runs keep the generous defaults so
// a GC pause or CPU-starved peer is not declared dead.
const (
	DefaultDialTimeout       = 3 * time.Second
	DefaultConnectDeadline   = 60 * time.Second
	DefaultHeartbeatInterval = 500 * time.Millisecond
	DefaultHeartbeatTimeout  = 10 * time.Second

	// maxDialBackoff caps the exponential retry backoff.
	maxDialBackoff = 2 * time.Second

	// drainTimeout bounds the post-shutdown read drain that keeps a
	// half-closed socket absorbing the peer's in-flight frames (so a full
	// close cannot RST away an unread regroup or bye on the peer's side).
	drainTimeout = 2 * time.Second
	// maxWorldSize is bounded by the dead-set bitmask width in the wire
	// protocol (and is far above anything the simulation targets).
	maxWorldSize = 64
)

// Options configures one process's endpoint.
type Options struct {
	// Rank is this process's rank in [0, WorldSize) at generation 0 (its
	// "original rank"; shrinks renumber densely but identity is stable).
	Rank int
	// WorldSize is the number of processes in the job.
	WorldSize int
	// CoordinatorAddr is the host:port where original rank 0 listens; every
	// process (including rank 0 itself) must agree on it.
	CoordinatorAddr string
	// ListenAddr is this process's listen address. Defaults to
	// CoordinatorAddr for rank 0 and "127.0.0.1:0" otherwise; the actual
	// bound address (Addr) is advertised to peers through the roster, so
	// port 0 is fine for every rank but the coordinator.
	ListenAddr string
	// Listener optionally injects a pre-bound listener (in-process tests
	// that cannot tolerate a bind race); ListenAddr is then ignored.
	Listener net.Listener
	// BuildTag is validated across processes during the handshake so a
	// stale binary cannot join a newer job. Defaults to "dev".
	BuildTag string
	// DialTimeout bounds one TCP connect attempt.
	DialTimeout time.Duration
	// ConnectDeadline bounds the whole rendezvous + mesh handshake,
	// including every dial retry. It also bounds how long a re-mesh after
	// a failure waits for the surviving peers, so it must exceed the
	// longest collective-free compute stretch of the training loop.
	ConnectDeadline time.Duration
	// HeartbeatInterval is how often each connection's writer pings.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a reader tolerates total frame silence
	// before declaring the peer failed. Must comfortably exceed the
	// interval (Dial enforces >= 2x).
	HeartbeatTimeout time.Duration
	// Metrics is the optional health sink, shared across Shrink
	// generations. Dial allocates a private one when nil.
	Metrics *transport.Metrics
	// Logf, when set, receives debug-level transport events.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.BuildTag == "" {
		o.BuildTag = "dev"
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.ConnectDeadline <= 0 {
		o.ConnectDeadline = DefaultConnectDeadline
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if o.HeartbeatTimeout < 2*o.HeartbeatInterval {
		o.HeartbeatTimeout = 2 * o.HeartbeatInterval
	}
	if o.ListenAddr == "" {
		if o.Rank == 0 {
			o.ListenAddr = o.CoordinatorAddr
		} else {
			o.ListenAddr = "127.0.0.1:0"
		}
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// wireFrame is one queued outbound frame: a data message (typ ftData) or a
// pre-encoded control/barrier payload.
type wireFrame struct {
	typ     byte
	m       transport.Message
	payload []byte
}

// Endpoint is one process's handle on the TCP fabric for one membership
// generation. Shrink consumes it and returns the next generation's
// endpoint; Close releases the final one.
type Endpoint struct {
	opt  Options
	orig int // original (generation-0) rank
	gen  uint32
	rank int   // dense rank in the current generation
	size int   // current world size
	live []int // original ranks of current members, ascending; live[rank] == orig

	host      *listenHost
	hostOwner bool // false after Shrink hands the listener to the successor
	fs        *transport.FailureState
	met       *transport.Metrics

	conns   []*peerConn              // by dense rank; nil at self
	inbox   []chan transport.Message // by dense source rank
	barCh   []chan barToken          // by dense source rank
	barrier uint64                   // local barrier epoch (collective loop only)
	done    chan struct{}            // closed by teardown
	closed  atomic.Bool
	wg      sync.WaitGroup

	// deadMask accumulates the original ranks dead across every generation
	// so far; it is reported in registrations so the coordinator can detect
	// diverged membership views.
	deadMask uint64

	pendMu  sync.Mutex
	pending []pendingConn // next-generation handshakes that arrived early
}

// barToken is one dissemination-barrier arrival notice.
type barToken struct {
	epoch uint64
	round uint8
}

// peerConn is one live connection with its reader/writer goroutines and
// fault-injection switches.
type peerConn struct {
	ep    *Endpoint
	dense int
	orig  int
	c     net.Conn
	br    *bufio.Reader // shared with the handshake that produced the conn

	ctrl chan wireFrame // pings/pongs, regroup, reject — never blocks on data
	data chan wireFrame // collective messages and barrier tokens

	closeOnce sync.Once
	departed  atomic.Bool // peer sent ftBye: clean shutdown, not a failure
	stalled   atomic.Bool // Inject(FaultStall): writer pauses, heartbeats stop
	corrupt   atomic.Bool // Inject(FaultCorrupt): damage the next data frame
}

// Dial joins the job: it binds the listener, runs the rendezvous handshake
// against the coordinator (validating world size, rank identity, build tag
// and protocol version), meshes with every peer, and returns once the full
// world has completed an initial barrier. The entire sequence is bounded by
// Options.ConnectDeadline; a peer that never shows up makes Dial fail with
// an error naming it rather than hang.
func Dial(opt Options) (*Endpoint, error) {
	opt = opt.withDefaults()
	if opt.WorldSize < 1 || opt.WorldSize > maxWorldSize {
		return nil, fmt.Errorf("tcptransport: world size %d outside [1,%d]", opt.WorldSize, maxWorldSize)
	}
	if opt.Rank < 0 || opt.Rank >= opt.WorldSize {
		return nil, fmt.Errorf("tcptransport: rank %d outside [0,%d)", opt.Rank, opt.WorldSize)
	}
	if opt.CoordinatorAddr == "" && opt.WorldSize > 1 {
		return nil, fmt.Errorf("tcptransport: coordinator address required for world size %d", opt.WorldSize)
	}
	deadline := time.Now().Add(opt.ConnectDeadline)
	host, err := newListenHost(opt, deadline)
	if err != nil {
		return nil, err
	}
	met := opt.Metrics
	if met == nil {
		met = transport.NewMetrics()
	}
	live := make([]int, opt.WorldSize)
	for i := range live {
		live[i] = i
	}
	e := newEndpoint(opt, host, met, 0, opt.Rank, live)
	if err := e.establish(deadline, nil); err != nil {
		host.close()
		return nil, err
	}
	return e, nil
}

// newEndpoint builds the per-generation shell; establish wires it up.
func newEndpoint(opt Options, host *listenHost, met *transport.Metrics, gen uint32, orig int, live []int) *Endpoint {
	rank := -1
	for i, o := range live {
		if o == orig {
			rank = i
		}
	}
	e := &Endpoint{
		opt:       opt,
		orig:      orig,
		gen:       gen,
		rank:      rank,
		size:      len(live),
		live:      live,
		host:      host,
		hostOwner: true,
		met:       met,
		done:      make(chan struct{}),
	}
	e.fs = transport.NewFailureState(nil)
	return e
}

// Addr returns the listener's actual bound address (resolving a ":0"
// ListenAddr to the kernel-assigned port).
func (e *Endpoint) Addr() string { return e.host.ln.Addr().String() }

// Rank returns the dense rank in the current generation.
func (e *Endpoint) Rank() int { return e.rank }

// Size returns the current world size.
func (e *Endpoint) Size() int { return e.size }

// OrigRank returns the stable generation-0 rank (metrics and logs are keyed
// by it).
func (e *Endpoint) OrigRank() int { return e.orig }

// Generation returns the membership generation (0 at Dial, +1 per Shrink).
func (e *Endpoint) Generation() uint32 { return e.gen }

// Metrics returns the endpoint's health sink.
func (e *Endpoint) Metrics() *transport.Metrics { return e.met }

// Send queues m for dst. It blocks only on backpressure (a full outbound
// queue) and unblocks with the failure verdict on abort.
func (e *Endpoint) Send(dst int, m transport.Message) error {
	if dst == e.rank || dst < 0 || dst >= e.size {
		panic(fmt.Sprintf("tcptransport: send to invalid rank %d (self %d of %d)", dst, e.rank, e.size))
	}
	pc := e.conns[dst]
	select {
	case pc.data <- wireFrame{typ: ftData, m: m}:
		return nil
	case <-e.fs.Abort():
		return e.abortErr()
	case <-e.done:
		return fmt.Errorf("tcptransport: endpoint closed")
	}
}

// Recv returns the next message from src. timeout > 0 arms the watchdog;
// expiry returns transport.ErrRecvTimeout and the caller picks the verdict.
func (e *Endpoint) Recv(src int, timeout time.Duration) (transport.Message, error) {
	if src == e.rank || src < 0 || src >= e.size {
		panic(fmt.Sprintf("tcptransport: recv from invalid rank %d (self %d of %d)", src, e.rank, e.size))
	}
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case m := <-e.inbox[src]:
		return m, nil
	case <-e.fs.Abort():
		return transport.Message{}, e.abortErr()
	case <-deadline:
		return transport.Message{}, transport.ErrRecvTimeout
	case <-e.done:
		return transport.Message{}, fmt.Errorf("tcptransport: endpoint closed")
	}
}

// Rendezvous runs a dissemination barrier over the mesh: ceil(log2 P)
// rounds, each sending a token to rank+2^k and awaiting one from rank-2^k.
// Completion of any rank implies every rank has arrived, so onLast (run
// locally, once per process) satisfies the "after all arrived, before any
// released" contract — each process charges its private cluster copy
// identically. Tokens carry (epoch, round); a mismatch means the peers are
// executing different collectives and is treated as a protocol violation.
// The wait deliberately has no deadline of its own (peers legitimately
// compute for a long time between collectives); liveness is the heartbeat
// monitor's job.
func (e *Endpoint) Rendezvous(onLast func()) error {
	epoch := e.barrier
	e.barrier++
	var round uint8
	for k := 1; k < e.size; k <<= 1 {
		dst := (e.rank + k) % e.size
		src := (e.rank - k + e.size) % e.size
		tok := make([]byte, 0, 9)
		tok = binary.LittleEndian.AppendUint64(tok, epoch)
		tok = append(tok, round)
		select {
		case e.conns[dst].data <- wireFrame{typ: ftBarrier, payload: tok}:
		case <-e.fs.Abort():
			return e.abortErr()
		case <-e.done:
			return fmt.Errorf("tcptransport: endpoint closed")
		}
		select {
		case got := <-e.barCh[src]:
			if got.epoch != epoch || got.round != round {
				e.failDense(src, fmt.Sprintf("barrier skew: got epoch %d round %d, want %d/%d",
					got.epoch, got.round, epoch, round))
				return e.abortErr()
			}
		case <-e.fs.Abort():
			return e.abortErr()
		case <-e.done:
			return fmt.Errorf("tcptransport: endpoint closed")
		}
		round++
	}
	if onLast != nil {
		onLast()
	}
	return nil
}

// FailRank declares a dense rank dead and broadcasts the verdict to every
// peer (best-effort regroup frames), so a failure detected by one process —
// a recv-watchdog expiry, say — aborts the whole world promptly instead of
// waiting for every process to time out independently.
func (e *Endpoint) FailRank(rank int) {
	if rank < 0 || rank >= e.size {
		return
	}
	e.failDense(rank, "declared failed")
}

func (e *Endpoint) failDense(rank int, cause string) {
	if !e.fs.Fail(rank) {
		return
	}
	e.met.IncRankFailure()
	e.opt.logf("tcptransport: rank %d (orig %d) gen %d: peer rank %d (orig %d) failed: %s",
		e.rank, e.orig, e.gen, rank, e.live[rank], cause)
	if rank != e.rank {
		if pc := e.conns[rank]; pc != nil {
			// Unblock its reader/writer promptly; the conn is useless now.
			pc.close()
		}
	}
	// Best-effort broadcast; a full control queue or dead writer just means
	// that peer learns through its own detector (or the Shrink regroup).
	mask := uint64(1) << uint(e.live[rank])
	frame := binary.LittleEndian.AppendUint64(nil, mask)
	for d, pc := range e.conns {
		if pc == nil || d == rank {
			continue
		}
		select {
		case pc.ctrl <- wireFrame{typ: ftRegroup, payload: frame}:
		default:
		}
	}
}

// Failed returns the dense ranks known dead, sorted (nil if none).
func (e *Endpoint) Failed() []int { return e.fs.Failed() }

// Err returns the failure verdict, or nil.
func (e *Endpoint) Err() error { return e.fs.Err() }

func (e *Endpoint) abortErr() error {
	if err := e.fs.Err(); err != nil {
		return err
	}
	return transport.ErrAborted
}

// Close tears the endpoint down: byes are flushed to every live peer (so
// they observe a departure, not a failure), connections close, goroutines
// drain, and the listener is released. Idempotent.
func (e *Endpoint) Close() error {
	e.teardown(true)
	return nil
}

// teardown stops the generation's connections and goroutines. closeHost
// additionally releases the listener (false during Shrink, which hands it
// to the successor generation).
func (e *Endpoint) teardown(closeHost bool) {
	if e.closed.CompareAndSwap(false, true) {
		close(e.done)
	}
	e.wg.Wait()
	for _, pc := range e.conns {
		if pc != nil {
			pc.close()
		}
	}
	if closeHost && e.hostOwner {
		e.hostOwner = false
		e.host.close()
		e.pendMu.Lock()
		pend := e.pending
		e.pending = nil
		e.pendMu.Unlock()
		for _, p := range pend {
			_ = p.rc.c.Close()
		}
	}
}

// close shuts the raw connection exactly once.
func (pc *peerConn) close() {
	pc.closeOnce.Do(func() { _ = pc.c.Close() })
}

// fail reports the connection's peer dead, unless it departed cleanly or
// the endpoint is shutting down.
func (pc *peerConn) fail(cause string) {
	if pc.departed.Load() || pc.ep.closed.Load() {
		return
	}
	pc.ep.failDense(pc.dense, cause)
}

// writeLoop owns the connection's outbound half: it drains the control
// queue ahead of data (heartbeats and failure notices must not sit behind a
// bulk gradient frame), pings every HeartbeatInterval, applies a write
// deadline to every frame, and on shutdown flushes remaining control frames
// plus a final bye.
func (pc *peerConn) writeLoop() {
	defer pc.ep.wg.Done()
	opt := &pc.ep.opt
	hb := time.NewTicker(opt.HeartbeatInterval)
	defer hb.Stop()
	var scratch []byte
	write := func(f wireFrame) bool {
		payload := f.payload
		corrupt := false
		if f.typ == ftData {
			scratch = appendMessage(scratch[:0], f.m)
			payload = scratch
			corrupt = pc.corrupt.CompareAndSwap(true, false)
		}
		_ = pc.c.SetWriteDeadline(time.Now().Add(2 * opt.HeartbeatTimeout))
		n, err := writeFrame(pc.c, f.typ, payload, corrupt)
		if err != nil {
			pc.fail(fmt.Sprintf("write to orig %d: %v", pc.orig, err))
			return false
		}
		pc.ep.met.AddSent(n)
		return true
	}
	for {
		if pc.stalled.Load() {
			// Injected stall: stop producing frames (heartbeats included)
			// without closing the socket, so the peer's read deadline — not
			// the OS — detects us.
			select {
			case <-pc.ep.done:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		// Control frames preempt data frames.
		select {
		case f := <-pc.ctrl:
			if !write(f) {
				return
			}
			continue
		default:
		}
		select {
		case f := <-pc.ctrl:
			if !write(f) {
				return
			}
		case f := <-pc.data:
			if !write(f) {
				return
			}
		case <-hb.C:
			ping := binary.LittleEndian.AppendUint64(nil, uint64(time.Now().UnixNano()))
			if !write(wireFrame{typ: ftPing, payload: ping}) {
				return
			}
		case <-pc.ep.done:
			// Drain pending control frames (a Shrink's regroup broadcast
			// must reach the wire), then depart cleanly.
			for {
				select {
				case f := <-pc.ctrl:
					if !write(f) {
						return
					}
				default:
					_ = pc.c.SetWriteDeadline(time.Now().Add(time.Second))
					_, _ = writeFrame(pc.c, ftBye, nil, false)
					if cw, ok := pc.c.(interface{ CloseWrite() error }); ok {
						// Half-close only: a full close here would make the
						// kernel answer the peer's next in-flight frame with
						// an RST, destroying the regroup and bye still
						// sitting unread in the peer's receive buffer — the
						// peer would then misread this clean departure as a
						// crash. The FIN says "done sending" while the
						// socket keeps absorbing the peer's frames; the
						// read loop drains and closes for real.
						_ = cw.CloseWrite()
					} else {
						pc.close()
					}
					return
				}
			}
		}
	}
}

// readLoop owns the inbound half: a rolling read deadline of
// HeartbeatTimeout is the silent-peer detector (any frame, ping included,
// resets it), CRC failures condemn the peer, and frames demux to the data
// inbox, the barrier channel, or the heartbeat plumbing.
func (pc *peerConn) readLoop() {
	defer pc.ep.wg.Done()
	e := pc.ep
	draining := false
	for {
		if e.closed.Load() {
			if !draining {
				// Shutdown drain: the write loop half-closed the socket, so
				// the peer's in-flight frames keep landing here instead of
				// provoking an RST that would destroy our unread bye on the
				// peer's side. Absorb them for a bounded window (until the
				// peer's own bye or FIN, at the latest drainTimeout), then
				// close for real.
				draining = true
				_ = pc.c.SetReadDeadline(time.Now().Add(drainTimeout))
			}
		} else {
			_ = pc.c.SetReadDeadline(time.Now().Add(e.opt.HeartbeatTimeout))
		}
		typ, payload, wire, err := readFrame(pc.br)
		if err != nil {
			switch {
			case pc.departed.Load() || e.closed.Load():
			case err == errCRC:
				e.met.IncCRCError()
				pc.fail("corrupt frame (checksum mismatch)")
			case isTimeout(err):
				e.met.IncHeartbeatMiss()
				pc.fail(fmt.Sprintf("silent peer: no frames for %v", e.opt.HeartbeatTimeout))
			default:
				pc.fail(fmt.Sprintf("read from orig %d: %v", pc.orig, err))
			}
			pc.close()
			return
		}
		e.met.AddRecv(wire)
		if draining {
			if typ == ftBye {
				pc.departed.Store(true)
				pc.close()
				return
			}
			continue
		}
		switch typ {
		case ftData:
			m, derr := decodeMessage(payload)
			if derr != nil {
				pc.fail(fmt.Sprintf("malformed data frame: %v", derr))
				return
			}
			select {
			case e.inbox[pc.dense] <- m:
			case <-e.done:
				return
			}
		case ftBarrier:
			if len(payload) != 9 {
				pc.fail("malformed barrier token")
				return
			}
			tok := barToken{epoch: binary.LittleEndian.Uint64(payload), round: payload[8]}
			select {
			case e.barCh[pc.dense] <- tok:
			case <-e.done:
				return
			}
		case ftPing:
			// Echo so the peer can measure RTT; drop if the control queue
			// is momentarily full — the next ping will get through.
			select {
			case pc.ctrl <- wireFrame{typ: ftPong, payload: payload}:
			default:
			}
		case ftPong:
			if len(payload) == 8 {
				sent := int64(binary.LittleEndian.Uint64(payload))
				e.met.ObserveRTT(pc.orig, time.Since(time.Unix(0, sent)).Seconds())
			}
		case ftBye:
			// Clean departure. Closing our side completes the graceful
			// shutdown: the peer's drain loop sees our FIN and releases the
			// socket.
			pc.departed.Store(true)
			pc.close()
			return
		case ftRegroup:
			if len(payload) == 8 {
				e.applyDeadMask(binary.LittleEndian.Uint64(payload), fmt.Sprintf("regroup from orig %d", pc.orig))
			}
		case ftReject:
			pc.fail(fmt.Sprintf("peer rejected this rank: %s", payload))
			return
		default:
			// Unknown-but-valid frame from a same-version peer: ignore for
			// forward compatibility within a protocol version.
		}
	}
}

// applyDeadMask fails every live rank named in an original-rank bitmask.
// Naming this process's own rank is meaningful: peers declared us dead (we
// were silent past their deadline), so we abort locally too — our next
// collective reports a RankFailedError that includes ourselves, and the
// caller exits instead of training into a world that excluded it.
func (e *Endpoint) applyDeadMask(mask uint64, cause string) {
	for dense, orig := range e.live {
		if mask&(1<<uint(orig)) != 0 {
			e.failDense(dense, cause)
		}
	}
}

// isTimeout reports whether err is a network timeout (deadline expiry).
func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	if !ok {
		// io.ReadFull wraps partial reads; unwrap one level.
		type unwrapper interface{ Unwrap() error }
		if u, uok := err.(unwrapper); uok {
			if ne2, ok2 := u.Unwrap().(net.Error); ok2 {
				return ne2.Timeout()
			}
		}
		return false
	}
	return ne.Timeout()
}

// dialRetry dials addr with capped exponential backoff plus full jitter
// until it succeeds or the deadline passes. The jitter source is the
// repo's deterministic xrand seeded per rank — no global randomness — which
// still decorrelates the retry storms of different ranks.
func dialRetry(opt *Options, met *transport.Metrics, addr string, deadline time.Time) (net.Conn, error) {
	rng := xrand.New(0x7C0FFEE ^ uint64(opt.Rank)<<32 ^ uint64(opt.Rank))
	backoff := 25 * time.Millisecond
	var lastErr error
	for attempt := 0; ; attempt++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("tcptransport: dial %s: deadline exceeded after %d attempts: %w", addr, attempt, lastErr)
		}
		if attempt > 0 {
			met.IncReconnect()
		}
		d := net.Dialer{Timeout: minDuration(opt.DialTimeout, remaining)}
		c, err := d.Dial("tcp", addr)
		if err == nil {
			if tc, ok := c.(*net.TCPConn); ok {
				_ = tc.SetNoDelay(true)
			}
			return c, nil
		}
		lastErr = err
		sleep := time.Duration(rng.Float64() * float64(backoff))
		sleep = minDuration(sleep, time.Until(deadline))
		if sleep > 0 {
			time.Sleep(sleep)
		}
		if backoff *= 2; backoff > maxDialBackoff {
			backoff = maxDialBackoff
		}
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
