package chantransport

import (
	"errors"
	"sync"
)

// errPhaserAborted is the internal signal that a rendezvous was torn down by
// a failure; the endpoint translates it into the world's RankFailedError.
var errPhaserAborted = errors.New("chantransport: rendezvous aborted by rank failure")

// phaser is a reusable barrier: all n participants arrive, the last one runs
// onLast, then everyone is released. A failure aborts the phaser: current
// and future waiters return errPhaserAborted instead of blocking on ranks
// that will never arrive.
type phaser struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
	aborted bool
}

func newPhaser(n int) *phaser {
	ph := &phaser{n: n}
	ph.cond = sync.NewCond(&ph.mu)
	return ph
}

func (ph *phaser) await(onLast func()) error {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	if ph.aborted {
		return errPhaserAborted
	}
	gen := ph.gen
	ph.arrived++
	if ph.arrived == ph.n {
		if onLast != nil {
			onLast()
		}
		ph.arrived = 0
		ph.gen++
		ph.cond.Broadcast()
		return nil
	}
	for ph.gen == gen && !ph.aborted {
		ph.cond.Wait()
	}
	if ph.gen == gen {
		// Released by abort, not by generation completion.
		ph.arrived--
		return errPhaserAborted
	}
	return nil
}

// abort permanently releases all current and future waiters with an error.
func (ph *phaser) abort() {
	ph.mu.Lock()
	ph.aborted = true
	ph.cond.Broadcast()
	ph.mu.Unlock()
}
