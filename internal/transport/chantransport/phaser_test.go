package chantransport

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// watchdog runs fn and fails the test with a full goroutine dump if it does
// not return within timeout. A hung rendezvous otherwise stalls the whole
// test binary until the go test deadline with no indication of which
// participants are stuck where; the dump shows every blocked frame.
func watchdog(t *testing.T, name string, timeout time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("%s: rendezvous timed out after %v; goroutine dump:\n%s", name, timeout, buf[:n])
	}
}

// TestPhaserReuseAcrossGenerations drives the rendezvous phaser through many
// arrive/release/re-arrive cycles with deliberately skewed participants: the
// same phaser object must be reusable generation after generation, onLast
// must run exactly once per generation, and no participant may slip into
// generation g+1 while another is still blocked in g.
func TestPhaserReuseAcrossGenerations(t *testing.T) {
	const n = 4
	gens := 200
	if testing.Short() {
		gens = 50
	}
	ph := newPhaser(n)
	var onLastRuns int64
	var inGen int64 // observed generation counter maintained by onLast
	watchdog(t, "phaser reuse", 30*time.Second, func() {
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for g := 0; g < gens; g++ {
					if id == g%n {
						// Skew arrival order so a different participant is
						// late (and a different one last) each generation.
						runtime.Gosched()
					}
					ph.await(func() {
						atomic.AddInt64(&onLastRuns, 1)
						atomic.AddInt64(&inGen, 1)
					})
					// Between release and the next arrival every participant
					// must observe the same completed-generation count: the
					// phaser cannot have released us early.
					if got := atomic.LoadInt64(&inGen); got < int64(g+1) {
						t.Errorf("participant %d released in gen %d before onLast ran (%d)", id, g, got)
						return
					}
				}
			}(id)
		}
		wg.Wait()
	})
	if onLastRuns != int64(gens) {
		t.Fatalf("onLast ran %d times over %d generations", onLastRuns, gens)
	}
}

// TestPhaserNilOnLast exercises the no-callback arrival path used by plain
// barriers.
func TestPhaserNilOnLast(t *testing.T) {
	const n = 3
	ph := newPhaser(n)
	watchdog(t, "phaser nil onLast", 10*time.Second, func() {
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for g := 0; g < 25; g++ {
					ph.await(nil)
				}
			}()
		}
		wg.Wait()
	})
}
