// Package chantransport is the in-process channel backend of the transport
// interface: every rank is a goroutine, point-to-point links are buffered Go
// channels carrying payload slices by reference, and the rendezvous is a
// reusable phaser. This is the deterministic simulation fabric the golden
// runs, fault-plan tests and benchmarks are built on — it moved here from
// internal/mpi unchanged when the transport interface was extracted, so its
// semantics (link capacity, abort behavior, once-per-world rendezvous hook)
// are exactly what the pre-extraction worlds had.
package chantransport

import (
	"time"

	"kgedist/internal/transport"
)

// Hub is one world's shared fabric: the link matrix, the rendezvous phaser
// and the failure state, shared by all P endpoints. Build one per world with
// New and hand each rank its Endpoint.
type Hub struct {
	p     int
	links [][]chan transport.Message // links[src][dst]
	ph    *phaser
	fs    *transport.FailureState
}

// New builds a hub for p ranks. Link buffers hold 4p+8 messages — enough
// that no collective in the repertoire (ring rotation, binomial tree,
// dissemination barrier) ever blocks a sender whose receiver is alive and
// making progress.
func New(p int) *Hub {
	if p < 1 {
		panic("chantransport: world size must be at least 1")
	}
	links := make([][]chan transport.Message, p)
	for s := range links {
		links[s] = make([]chan transport.Message, p)
		for d := range links[s] {
			if s != d {
				links[s][d] = make(chan transport.Message, 4*p+8)
			}
		}
	}
	h := &Hub{p: p, links: links, ph: newPhaser(p)}
	h.fs = transport.NewFailureState(h.ph.abort)
	return h
}

// Endpoint returns rank's handle on the hub.
func (h *Hub) Endpoint(rank int) transport.Endpoint {
	if rank < 0 || rank >= h.p {
		panic("chantransport: rank out of range")
	}
	return &endpoint{h: h, rank: rank}
}

// endpoint implements transport.Endpoint over the hub's channels.
type endpoint struct {
	h    *Hub
	rank int
}

func (e *endpoint) Rank() int { return e.rank }
func (e *endpoint) Size() int { return e.h.p }

// Send delivers m by reference: the payload slices transfer to the receiver
// without copying, which is what makes the pooled-staging discipline in the
// dense collectives (sender Gets, single receiver Puts) allocation-free.
func (e *endpoint) Send(dst int, m transport.Message) error {
	select {
	case e.h.links[e.rank][dst] <- m:
		return nil
	case <-e.h.fs.Abort():
		return e.abortErr()
	}
}

func (e *endpoint) Recv(src int, timeout time.Duration) (transport.Message, error) {
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case m := <-e.h.links[src][e.rank]:
		return m, nil
	case <-e.h.fs.Abort():
		return transport.Message{}, e.abortErr()
	case <-deadline:
		return transport.Message{}, transport.ErrRecvTimeout
	}
}

func (e *endpoint) Rendezvous(onLast func()) error {
	if err := e.h.ph.await(onLast); err != nil {
		return e.abortErr()
	}
	return nil
}

func (e *endpoint) FailRank(rank int) { e.h.fs.Fail(rank) }

func (e *endpoint) Failed() []int { return e.h.fs.Failed() }

func (e *endpoint) Err() error { return e.h.fs.Err() }

// Close is a no-op: channels and the phaser are garbage-collected with the
// hub, and a channel world is torn down by dropping it (Shrink builds a
// fresh hub rather than mutating this one).
func (e *endpoint) Close() error { return nil }

// abortErr reports the failure verdict after an abort, falling back to the
// generic sentinel if the dead set is somehow empty (abort without a
// recorded rank cannot happen through FailRank, but the fallback keeps the
// error non-nil by construction).
func (e *endpoint) abortErr() error {
	if err := e.h.fs.Err(); err != nil {
		return err
	}
	return transport.ErrAborted
}
