// Distributed: the paper's headline scenario in miniature. Train the same
// dataset on 8 simulated nodes twice — once with the plain all-reduce
// baseline and once with all five strategies combined (DRS + random
// selection + 1-bit quantization + relation partition + sample selection) —
// and compare training time, communication volume and accuracy.
package main

import (
	"fmt"
	"log"

	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
)

func main() {
	d := kg.Generate(kg.GenConfig{
		Name:      "distributed-demo",
		Entities:  4000,
		Relations: 400,
		Triples:   30000,
		Seed:      11,
	})

	base := core.DefaultConfig()
	base.Dim = 16
	base.BatchSize = 1000
	base.BaseLR = 0.02
	base.MaxEpochs = 25
	base.StopPatience = 25
	base.TestSample = 100
	base.Seed = 11

	const nodes = 8

	baseline := base
	baseline.Comm = core.CommAllReduce
	rBase, err := core.Train(baseline, d, nodes)
	if err != nil {
		log.Fatal(err)
	}

	combined := base
	combined.Comm = core.CommDynamic
	combined.Select = grad.SelectBernoulli
	combined.Quant = grad.OneBitMax
	combined.RelationPartition = true
	combined.NegSelect = true
	combined.NegSamples = 5
	rComb, err := core.Train(combined, d, nodes)
	if err != nil {
		log.Fatal(err)
	}

	show := func(r *core.Result) {
		fmt.Printf("%-18s TT %.3fs  comm %.1f MB (relation %.1f MB)  N %d  TCA %.1f  MRR %.3f\n",
			r.Strategy, r.TotalHours*3600, float64(r.CommBytes)/1e6,
			float64(r.RelationCommBytes)/1e6, r.Epochs, r.TCA, r.MRR)
	}
	fmt.Printf("training on %d simulated nodes:\n", nodes)
	show(rBase)
	show(rComb)
	if rComb.SwitchedAtEpoch > 0 {
		fmt.Printf("dynamic strategy switched to all-gather at epoch %d\n", rComb.SwitchedAtEpoch)
	}
	if rComb.RelationCommBytes != 0 {
		log.Fatal("relation partition failed to eliminate relation communication")
	}
	fmt.Printf("communication volume reduced %.1fx\n",
		float64(rBase.CommBytes)/float64(rComb.CommBytes))
}
