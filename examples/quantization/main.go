// Quantization: compare the paper's §4.3 gradient quantization schemes on
// one model — wire size, reconstruction error, and end-to-end accuracy of
// the 1-bit variants (max, avg, posmax, negmax, posavg, negavg) and the
// 2-bit ternary scheme. The paper picked 1-bit max; this example shows why.
package main

import (
	"fmt"
	"log"
	"math"

	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
	"kgedist/internal/xrand"
)

func main() {
	// Part 1: microscopic view — quantize one synthetic gradient and
	// measure wire size and reconstruction error per scheme.
	rng := xrand.New(5)
	g := grad.NewSparseGrad(32)
	for i := 0; i < 200; i++ {
		row := g.Row(int32(i))
		for j := range row {
			row[j] = float32(rng.NormFloat64()) * 0.01
		}
	}
	full := grad.Quantize(g, grad.NoQuant, nil).WireBytes()
	fmt.Printf("%-14s %10s %12s %14s\n", "scheme", "bytes", "vs float32", "rel L2 error")
	schemes := []grad.Scheme{
		grad.OneBitMax, grad.OneBitAvg, grad.OneBitPosMax,
		grad.OneBitNegMax, grad.OneBitPosAvg, grad.OneBitNegAvg,
		grad.TwoBitTernary,
	}
	for _, s := range schemes {
		enc := grad.Quantize(g, s, rng)
		dec := grad.NewSparseGrad(32)
		grad.Dequantize(enc, dec)
		var errSq, refSq float64
		g.ForEach(func(id int32, row []float32) {
			d, _ := dec.Get(id)
			for i := range row {
				e := float64(row[i] - d[i])
				errSq += e * e
				refSq += float64(row[i]) * float64(row[i])
			}
		})
		fmt.Printf("%-14s %10d %11.1fx %14.3f\n",
			s, enc.WireBytes(), float64(full)/float64(enc.WireBytes()),
			math.Sqrt(errSq/refSq))
	}

	// Part 2: end-to-end — train with the paper's candidate schemes and
	// compare accuracy and communication volume.
	d := kg.Generate(kg.GenConfig{
		Name: "quant-demo", Entities: 1500, Relations: 150, Triples: 12000, Seed: 3,
	})
	base := core.DefaultConfig()
	base.Dim = 16
	base.BatchSize = 1000
	base.BaseLR = 0.02
	base.MaxEpochs = 20
	base.StopPatience = 20
	base.TestSample = 80
	base.Comm = core.CommAllGather
	base.Seed = 3

	fmt.Printf("\n%-14s %10s %10s %8s\n", "training with", "comm MB", "TCA", "MRR")
	for _, s := range []grad.Scheme{grad.NoQuant, grad.OneBitMax, grad.OneBitAvg, grad.TwoBitTernary} {
		cfg := base
		cfg.Quant = s
		res, err := core.Train(cfg, d, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.1f %9.1f%% %8.3f\n",
			s, float64(res.CommBytes)/1e6, res.TCA, res.MRR)
	}
}
