// Quickstart: generate a small knowledge graph, train ComplEx embeddings on
// a single simulated node, and evaluate link prediction and triple
// classification — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"kgedist/internal/core"
	"kgedist/internal/kg"
)

func main() {
	// 1. A synthetic knowledge graph (swap in kg.LoadDir for real data).
	d := kg.Generate(kg.GenConfig{
		Name:      "quickstart",
		Entities:  1500,
		Relations: 120,
		Triples:   15000,
		Seed:      7,
	})
	fmt.Printf("dataset: %d entities, %d relations, %d train triples\n",
		d.NumEntities, d.NumRelations, len(d.Train))

	// 2. Train ComplEx with the default configuration.
	cfg := core.DefaultConfig()
	cfg.Dim = 16
	cfg.BatchSize = 1000
	cfg.BaseLR = 0.02
	cfg.MaxEpochs = 30
	cfg.StopPatience = 30
	cfg.TestSample = 100
	cfg.Seed = 7

	res, err := core.Train(cfg, d, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the results.
	fmt.Printf("trained %d epochs in %.1f virtual seconds\n", res.Epochs, res.TotalHours*3600)
	fmt.Printf("filtered MRR %.3f, Hits@10 %.3f, TCA %.1f%%\n", res.MRR, res.Hits10, res.TCA)
	if res.MRR < 0.05 {
		log.Fatal("quickstart sanity check failed: MRR did not rise above random")
	}
	fmt.Println("quickstart OK")
}
