// Link prediction / knowledge-base completion: train embeddings, save a
// checkpoint, reload it, and answer "which tail completes (h, r, ?)" —
// the downstream workflow the paper's introduction motivates.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"kgedist/internal/core"
	"kgedist/internal/eval"
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

func main() {
	d := kg.Generate(kg.GenConfig{
		Name:      "kbc-demo",
		Entities:  1200,
		Relations: 80,
		Triples:   12000,
		Seed:      23,
	})

	cfg := core.DefaultConfig()
	cfg.Dim = 16
	cfg.BatchSize = 1000
	cfg.BaseLR = 0.02
	cfg.MaxEpochs = 30
	cfg.StopPatience = 30
	cfg.TestSample = 100
	cfg.Seed = 23
	res, err := core.Train(cfg, d, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: MRR %.3f, TCA %.1f%%\n", res.MRR, res.TCA)

	// Persist and reload, as a serving system would.
	dir, err := os.MkdirTemp("", "kgedist-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir) //kgelint:ignore droppederr best-effort temp dir cleanup
	ckpt := filepath.Join(dir, "model.kge")
	m := model.New(cfg.ModelName, cfg.Dim)
	if err := model.SaveCheckpoint(ckpt, m, res.FinalParams); err != nil {
		log.Fatal(err)
	}
	m2, params, err := model.LoadCheckpoint(ckpt)
	if err != nil {
		log.Fatal(err)
	}

	// Knowledge-base completion: for a held-out test triple, rank every
	// candidate tail and report where the true one lands.
	filter := kg.NewFilterIndex(d)
	query := d.Test[0]
	type cand struct {
		entity int32
		score  float32
	}
	cands := make([]cand, 0, d.NumEntities)
	for e := 0; e < d.NumEntities; e++ {
		c := query
		c.T = int32(e)
		if int32(e) != query.T && filter.Contains(c) {
			continue // filtered evaluation: skip other known facts
		}
		cands = append(cands, cand{int32(e), m2.Score(params, c)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	rank := 0
	for i, c := range cands {
		if c.entity == query.T {
			rank = i + 1
			break
		}
	}
	fmt.Printf("query (%d, %d, ?): true tail %d ranked %d of %d candidates\n",
		query.H, query.R, query.T, rank, len(cands))
	fmt.Println("top-5 completions:")
	for i := 0; i < 5 && i < len(cands); i++ {
		marker := ""
		if cands[i].entity == query.T {
			marker = "  <- true tail"
		}
		fmt.Printf("  %d. entity %d (score %.3f)%s\n", i+1, cands[i].entity, cands[i].score, marker)
	}

	// Cross-check with the library's evaluator on a subsample.
	lp := eval.LinkPrediction(m2, params, d, filter, 50, xrand.New(1))
	fmt.Printf("evaluator agrees: filtered MRR %.3f over %d sampled triples\n", lp.FilteredMRR, lp.Triples)
}
