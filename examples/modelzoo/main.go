// Model zoo: train every implemented KGE model on the same knowledge graph
// with the same distributed configuration and compare accuracy — the
// paper's future-work direction ("explore our methods with other KGE
// models") made concrete. All five strategies except negative-sample
// selection are model-agnostic; this example runs with RS + 1-bit + RP on
// two simulated nodes for each model.
package main

import (
	"fmt"
	"log"

	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
)

func main() {
	d := kg.Generate(kg.GenConfig{
		Name:      "zoo-demo",
		Entities:  1200,
		Relations: 100,
		Triples:   12000,
		Seed:      31,
	})
	fmt.Printf("dataset: %d entities, %d relations, %d train triples\n\n",
		d.NumEntities, d.NumRelations, len(d.Train))
	fmt.Printf("%-10s %8s %8s %8s %10s\n", "model", "epochs", "TCA", "MRR", "comm MB")

	for _, name := range []string{"complex", "distmult", "transe", "rotate", "transh", "simple"} {
		cfg := core.DefaultConfig()
		cfg.ModelName = name
		cfg.Dim = 16
		cfg.BatchSize = 1000
		cfg.BaseLR = 0.02
		cfg.MaxEpochs = 25
		cfg.StopPatience = 25
		cfg.TestSample = 80
		cfg.Comm = core.CommAllGather
		cfg.Select = grad.SelectBernoulli
		cfg.Quant = grad.OneBitMax
		cfg.RelationPartition = true
		cfg.NegSamples = 2
		cfg.Seed = 31
		if name == "transe" || name == "rotate" || name == "transh" {
			// Distance-based models favor the margin objective.
			cfg.LossName = "margin"
			cfg.Margin = 2
		}
		res, err := core.Train(cfg, d, 2)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-10s %8d %7.1f%% %8.3f %10.1f\n",
			name, res.Epochs, res.TCA, res.MRR, float64(res.CommBytes)/1e6)
	}
}
