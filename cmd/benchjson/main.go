// Command benchjson converts `go test -bench` output on stdin into the
// BENCH_<date>.json capture format defined by internal/benchfmt. It is the
// back half of `make bench`:
//
//	go test -bench=. -benchmem ./internal/... | benchjson -out BENCH_$(date +%F).json
//
// With -out empty the file is written to stdout. -commit stamps the file
// with a git hash (the Makefile passes `git rev-parse --short HEAD`).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"kgedist/internal/benchfmt"
)

func main() {
	var (
		out    = flag.String("out", "", "output file (empty = stdout)")
		commit = flag.String("commit", "", "git commit hash to stamp into the capture")
	)
	flag.Parse()

	benches, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	f := &benchfmt.File{
		Schema:     benchfmt.Schema,
		Commit:     *commit,
		GoVersion:  runtime.Version(),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: benches,
	}
	if err := f.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	w := os.Stdout
	var file *os.File
	if *out != "" {
		file, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		w = file
	}
	if err := f.Encode(w); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if file != nil {
		// Close errors are real here: they are where buffered writes to a
		// full disk surface.
		if err := file.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(benches), *out)
	}
}
