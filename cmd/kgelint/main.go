// Command kgelint runs kgedist's project-specific static analyzers — the
// multichecker for the suite in internal/lint. CI and `make lint` gate on a
// zero-finding run over ./....
//
// Usage:
//
//	kgelint [-only name[,name]] [-list] [-json] [-diff] [-audit] [packages]
//
// Packages default to ./.... Findings print as file:line:col: message
// (analyzer), or as a JSON array with -json (file/line/col/analyzer/message
// records, schema pinned by internal/lint's TestJSONSchema); a non-zero
// exit reports their presence. -diff prints a unified-diff-style
// suppression suggestion per finding. Suppress an individual finding with a
// trailing or preceding //kgelint:ignore <analyzer> <rationale> comment;
// -audit (on by default) reports directives that no longer suppress
// anything, so accepted findings cannot rot into dead annotations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kgedist/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	diffOut := flag.Bool("diff", false, "print a suppression-suggestion diff per finding")
	audit := flag.Bool("audit", true, "report stale //kgelint:ignore directives")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				kept = append(kept, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "kgelint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "kgelint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kgelint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzersAudited(pkgs, analyzers, *audit)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kgelint: %v\n", err)
		os.Exit(2)
	}
	switch {
	case *jsonOut:
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "kgelint: %v\n", err)
			os.Exit(2)
		}
	case *diffOut:
		if err := lint.WriteSuppressionDiffs(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "kgelint: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "kgelint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
