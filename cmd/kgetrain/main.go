// Command kgetrain trains a knowledge-graph embedding model with any
// combination of the paper's five strategies on a simulated cluster, or —
// with -peers/-rank — as one rank of a multi-process job over TCP.
//
// Examples:
//
//	kgetrain -dataset fb15k-mini -nodes 8 -comm allreduce
//	kgetrain -dataset fb250k-mini -nodes 16 -comm dynamic -rs -quant 1bit-max -rp -ss -negs 5
//	kgetrain -data ./mydataset -nodes 4    # OpenKE-layout directory
//
// Multi-process over TCP (run one command per rank; rank 0 coordinates):
//
//	kgetrain -peers host0:7000,host1:7000,host2:7000 -rank 0 -comm dynamic
//	kgetrain -peers host0:7000,host1:7000,host2:7000 -rank 1 -comm dynamic
//	kgetrain -peers host0:7000,host1:7000,host2:7000 -rank 2 -comm dynamic
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/partition"
	"kgedist/internal/ps"
	"kgedist/internal/simnet"
	"kgedist/internal/trace"
	"kgedist/internal/transport"
	"kgedist/internal/transport/tcptransport"
)

// buildTag is exchanged during the TCP rendezvous handshake; every rank of
// a multi-process job must present the same tag, which catches a stale
// binary joining a cluster of newer ones.
const buildTag = "kgetrain-1"

func main() {
	var (
		dataset   = flag.String("dataset", "fb15k-mini", "synthetic preset: fb15k-mini, fb250k-mini, fb15k-full, fb250k-full")
		dataDir   = flag.String("data", "", "load an OpenKE-layout dataset directory instead of a preset")
		namedDir  = flag.String("nameddata", "", "load a Freebase-text-layout directory (train.txt/valid.txt/test.txt of name triples, as FB15K is distributed)")
		nodes     = flag.Int("nodes", 1, "simulated cluster size")
		modelName = flag.String("model", "complex", "model: complex, distmult, transe, rotate, transh, simple")
		lossName  = flag.String("loss", "logistic", "objective: logistic, margin")
		margin    = flag.Float64("margin", 1.0, "ranking margin for -loss margin")
		dim       = flag.Int("dim", 32, "embedding dimension")
		optName   = flag.String("opt", "adam", "optimizer: adam, adagrad, sgd")
		batch     = flag.Int("batch", 2000, "per-worker batch size")
		lr        = flag.Float64("lr", 0.01, "base learning rate (scaled by min(4, nodes))")
		epochs    = flag.Int("epochs", 80, "maximum epochs")
		comm      = flag.String("comm", "allreduce", "gradient exchange: allreduce, allgather, dynamic, dyncomp")
		probe     = flag.Int("probe", 10, "dynamic probe period k")

		compressHold   = flag.Int("compress-hold", 0, "dyncomp: consecutive below-threshold epochs before each ladder step (0 = default)")
		compressWarmup = flag.Int("compress-warmup", 0, "dyncomp: initial epochs at fp32 before the ladder may step (0 = default)")
		rs        = flag.Bool("rs", false, "random selection of gradient vectors")
		quant     = flag.String("quant", "none", "quantization: none, 1bit-max, 1bit-avg, 2bit")
		ef        = flag.Bool("ef", false, "error-feedback residuals for quantization")
		rp        = flag.Bool("rp", false, "relation partition")
		ss        = flag.Bool("ss", false, "negative sample selection (train hardest of n)")
		negs      = flag.Int("negs", 1, "negative samples n per positive")
		strategy  = flag.String("strategy", "sgd", "training architecture: sgd (the paper's data-parallel trainer) or ps (parameter-server baseline)")
		servers   = flag.Int("servers", 1, "parameter-server count for -strategy ps")

		partitioned    = flag.Bool("partitioned", false, "sharded-table mode: entity+relation rows are partitioned across ranks, batches pull remote rows and push gradients back")
		partitionBy    = flag.String("partition-by", "mincut", "row partitioner for -partitioned: mincut or hash")
		partitionSlack = flag.Float64("partition-slack", 0, "per-rank row-count slack for -partitioned (0 = default 0.1)")
		seed      = flag.Uint64("seed", 1, "random seed")
		save      = flag.String("save", "", "write the trained model to this checkpoint file")
		traceOut  = flag.String("trace", "", "write a JSONL run trace to this file")

		faults    = flag.String("faults", "", "fault plan, e.g. 'crash:2@350,slow:0@100+50x4,delay:0@200+30x8' (kind:RANK@T[+DURxFACTOR], virtual seconds)")
		ckptEvery = flag.Int("checkpoint-every", 0, "snapshot the merged model every N epochs (recovery point; 0 = off)")
		ckptPath  = flag.String("checkpoint", "", "persist snapshots crash-safely to this file (needs -checkpoint-every)")
		recoverOn = flag.Bool("recover", false, "shrink-and-continue on rank failure instead of aborting")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")

		peers       = flag.String("peers", "", "multi-process mode: comma-separated rank addresses (rank 0 first, the coordinator); one kgetrain per rank")
		rank        = flag.Int("rank", -1, "this process's rank into -peers")
		listen      = flag.String("listen", "", "bind address override for this rank (default: its -peers entry)")
		metricsAddr = flag.String("metrics-addr", "", "serve transport health metrics in Prometheus format at this address (/metrics)")
	)
	flag.Parse()

	// Every contradictory flag combination is rejected here, before any
	// dataset or network setup, with one actionable error.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := validateFlagCombos(explicit, *strategy, *peers, *comm, *quant, *partitioned); err != nil {
		fmt.Fprintln(os.Stderr, "kgetrain:", err)
		os.Exit(2)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC() // capture live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	d, err := loadDataset(*dataset, *dataDir, *namedDir, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := core.DefaultConfig()
	cfg.ModelName = *modelName
	cfg.Dim = *dim
	cfg.OptimizerName = *optName
	cfg.LossName = *lossName
	cfg.Margin = *margin
	cfg.BatchSize = *batch
	cfg.BaseLR = *lr
	cfg.MaxEpochs = *epochs
	cfg.ProbeEvery = *probe
	cfg.ErrorFeedback = *ef
	cfg.RelationPartition = *rp
	cfg.NegSelect = *ss
	cfg.NegSamples = *negs
	cfg.Seed = *seed
	switch *comm {
	case "allreduce":
		cfg.Comm = core.CommAllReduce
	case "allgather":
		cfg.Comm = core.CommAllGather
	case "dynamic":
		cfg.Comm = core.CommDynamic
	case "dyncomp":
		cfg.Comm = core.CommDynamicCompress
		cfg.CompressHold = *compressHold
		cfg.CompressWarmup = *compressWarmup
	default:
		fmt.Fprintf(os.Stderr, "unknown -comm %q\n", *comm)
		os.Exit(1)
	}
	if *rs {
		cfg.Select = grad.SelectBernoulli
	}
	switch *quant {
	case "none":
	case "1bit-max":
		cfg.Quant = grad.OneBitMax
	case "1bit-avg":
		cfg.Quant = grad.OneBitAvg
	case "2bit":
		cfg.Quant = grad.TwoBitTernary
	default:
		fmt.Fprintf(os.Stderr, "unknown -quant %q\n", *quant)
		os.Exit(1)
	}
	if *faults != "" {
		plan, err := simnet.ParseFaultPlan(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.FaultPlan = plan
	}
	cfg.CheckpointEvery = *ckptEvery
	cfg.CheckpointPath = *ckptPath
	cfg.Recover = *recoverOn
	cfg.Partitioned = *partitioned
	if *partitioned {
		cfg.PartitionBy = *partitionBy
		cfg.PartitionSlack = *partitionSlack
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("dataset %s: %d entities, %d relations, %d/%d/%d train/valid/test\n",
		d.Name, d.NumEntities, d.NumRelations, len(d.Train), len(d.Valid), len(d.Test))

	if *strategy == "ps" {
		if err := runPS(d, *modelName, *dim, *optName, *batch, *lr, *epochs, *negs, *seed, *nodes, *servers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var res *core.Result
	if *peers != "" {
		res, err = trainOverTCP(cfg, d, *peers, *rank, *listen, *metricsAddr)
	} else {
		fmt.Printf("training %s (%s) on %d node(s), strategy %s\n",
			cfg.ModelName, cfg.OptimizerName, *nodes, cfg.StrategyLabel())
		res, err = core.Train(cfg, d, *nodes)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nconverged after %d epochs\n", res.Epochs)
	fmt.Printf("total training time   %.3f virtual hours (%.1f s/epoch avg)\n",
		res.TotalHours, res.AvgEpochSeconds())
	fmt.Printf("communication         %.3f virtual hours, %.1f MB moved (%.1f MB relation)\n",
		res.CommHours, float64(res.CommBytes)/1e6, float64(res.RelationCommBytes)/1e6)
	if res.SwitchedAtEpoch > 0 {
		fmt.Printf("dynamic switch        all-gather from epoch %d\n", res.SwitchedAtEpoch)
	}
	if len(res.CompressionSteps) > 0 {
		var steps []string
		for _, s := range res.CompressionSteps {
			steps = append(steps, fmt.Sprintf("%s from epoch %d", s.Level, s.Epoch))
		}
		fmt.Printf("compression ladder    %s\n", strings.Join(steps, ", "))
	}
	if pstat := res.Partition; pstat != nil {
		fmt.Printf("partition (%s)    %d rank(s): cut %.1f%%, remote rows %.1f%%, peak shard %d entities, balance %.2f\n",
			pstat.Algo, pstat.Ranks, 100*pstat.CutRatio, 100*pstat.RemoteRowFraction,
			pstat.MaxEntityShard, pstat.EntityBalance)
	}
	if rc := res.Recovery; rc.FaultsInjected > 0 || rc.Checkpoints > 0 {
		fmt.Printf("fault tolerance       %d fault(s) injected, %d rank failure(s), %d recover(y/ies), %d epoch(s) replayed\n",
			rc.FaultsInjected, rc.RankFailures, rc.Recoveries, rc.EpochsLost)
		fmt.Printf("                      %d checkpoint(s), %.1f virtual s recovering, finished on %d node(s)%s\n",
			rc.Checkpoints, rc.RecoverySeconds, rc.FinalNodes,
			map[bool]string{true: " (degraded)", false: ""}[rc.Degraded])
	}
	fmt.Printf("test TCA              %.1f%%\n", res.TCA)
	fmt.Printf("test filtered MRR     %.3f (Hits@10 %.3f)\n", res.MRR, res.Hits10)
	if *save != "" {
		m := model.New(cfg.ModelName, cfg.Dim)
		if err := model.SaveCheckpoint(*save, m, res.FinalParams); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint saved to   %s\n", *save)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		meta := trace.Meta{Dataset: d.Name, Strategy: res.Strategy, Nodes: *nodes, Seed: *seed}
		if err := trace.WriteRun(f, meta, res); err != nil {
			_ = f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to      %s\n", *traceOut)
	}
}

// trainOverTCP runs this process's rank of a multi-process job: rendezvous
// with the peers over TCP, train through core.TrainProcess, and optionally
// expose transport health metrics over HTTP while the job runs.
func trainOverTCP(cfg core.Config, d *kg.Dataset, peerList string, rank int, listen, metricsAddr string) (*core.Result, error) {
	addrs := strings.Split(peerList, ",")
	for i, a := range addrs {
		addrs[i] = strings.TrimSpace(a)
		if addrs[i] == "" {
			return nil, fmt.Errorf("-peers entry %d is empty", i)
		}
	}
	if len(addrs) < 2 {
		return nil, fmt.Errorf("-peers needs at least 2 addresses, got %d", len(addrs))
	}
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("-rank %d out of range for %d peers", rank, len(addrs))
	}
	listenAddr := listen
	if listenAddr == "" {
		listenAddr = addrs[rank]
	}

	// For partitioned jobs the plan is a pure function of (dataset, world
	// size, config), so the scrape endpoint can expose its quality figures
	// up front, next to the live transport counters.
	var plan *partition.Plan
	if cfg.Partitioned && metricsAddr != "" {
		var perr error
		plan, perr = partition.Build(d, partition.Options{
			Ranks: len(addrs), Algo: cfg.PartitionBy, Seed: cfg.Seed, Slack: cfg.PartitionSlack,
		})
		if perr != nil {
			return nil, perr
		}
	}

	met := transport.NewMetrics()
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			met.WritePrometheus(w)
			if plan != nil {
				writePartitionMetrics(w, plan)
			}
		})
		go func() {
			if err := http.ListenAndServe(metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			}
		}()
		fmt.Printf("transport metrics at  http://%s/metrics\n", metricsAddr)
	}

	fmt.Printf("rank %d/%d rendezvous with coordinator %s (listening on %s)\n",
		rank, len(addrs), addrs[0], listenAddr)
	ep, err := tcptransport.Dial(tcptransport.Options{
		Rank:            rank,
		WorldSize:       len(addrs),
		CoordinatorAddr: addrs[0],
		ListenAddr:      listenAddr,
		BuildTag:        buildTag,
		Metrics:         met,
	})
	if err != nil {
		return nil, fmt.Errorf("rendezvous: %w", err)
	}
	fmt.Printf("training %s (%s) as rank %d of %d processes, strategy %s\n",
		cfg.ModelName, cfg.OptimizerName, rank, len(addrs), cfg.StrategyLabel())
	return core.TrainProcess(cfg, d, ep)
}

// validateFlagCombos rejects every contradictory flag combination up front
// with one actionable error, instead of letting a bad invocation fail deep
// inside setup (or, worse, silently ignore a knob). `explicit` holds the
// flags the user actually set on the command line.
func validateFlagCombos(explicit map[string]bool, strategy, peers, comm, quant string, partitioned bool) error {
	if strategy != "sgd" && strategy != "ps" {
		return fmt.Errorf("unknown -strategy %q (want sgd or ps)", strategy)
	}
	if peers == "" {
		for _, f := range []string{"rank", "listen", "metrics-addr"} {
			if explicit[f] {
				return fmt.Errorf("-%s configures one rank of a multi-process job; it needs -peers", f)
			}
		}
	} else {
		if explicit["nodes"] {
			return fmt.Errorf("-nodes conflicts with -peers: the world size is the peer count")
		}
		if explicit["faults"] {
			return fmt.Errorf("-faults drives the simulated cluster; over TCP (-peers) faults come from the real sockets")
		}
	}
	if strategy == "ps" {
		// The parameter-server baseline is a fixed architecture; every
		// distributed-SGD knob is meaningless there. Name all offenders at once.
		var bad []string
		for _, f := range []string{
			"partitioned", "partition-by", "partition-slack", "comm", "probe",
			"compress-hold", "compress-warmup",
			"rs", "quant", "ef", "rp", "ss", "loss", "margin",
			"peers", "rank", "listen", "metrics-addr",
			"faults", "checkpoint-every", "checkpoint", "recover", "save", "trace",
		} {
			if explicit[f] {
				bad = append(bad, "-"+f)
			}
		}
		if len(bad) > 0 {
			return fmt.Errorf("-strategy ps is the parameter-server baseline and does not take distributed-SGD knobs; drop %s", strings.Join(bad, ", "))
		}
	} else if explicit["servers"] {
		return fmt.Errorf("-servers sizes the parameter-server tier; it needs -strategy ps")
	}
	if comm == "dyncomp" {
		// The adaptive controller owns the whole compression pipeline
		// (DESIGN.md §13); the static compression knobs would fight it.
		var bad []string
		if explicit["quant"] && quant != "none" {
			bad = append(bad, "-quant (the ladder picks the quantizer per epoch)")
		}
		if explicit["rs"] {
			bad = append(bad, "-rs (the ladder's top rung sparsifies)")
		}
		if explicit["ef"] {
			bad = append(bad, "-ef (the controller always runs error feedback on lossy rungs)")
		}
		if len(bad) > 0 {
			return fmt.Errorf("-comm dyncomp drives compression adaptively and cannot be combined with %s", strings.Join(bad, "; "))
		}
	} else {
		for _, f := range []string{"compress-hold", "compress-warmup"} {
			if explicit[f] {
				return fmt.Errorf("-%s tunes the adaptive compression controller; it needs -comm dyncomp", f)
			}
		}
	}
	if partitioned {
		var bad []string
		if comm == "dynamic" {
			bad = append(bad, "-comm dynamic (the row exchange has no dense all-reduce to switch away from)")
		}
		if comm == "dyncomp" {
			bad = append(bad, "-comm dyncomp (compressed collectives assume replicated dense tables)")
		}
		if explicit["quant"] && quant != "none" {
			bad = append(bad, "-quant (quantization codebooks assume replicated dense tables)")
		}
		if explicit["ef"] {
			bad = append(bad, "-ef (error feedback rides on quantization)")
		}
		if explicit["rp"] {
			bad = append(bad, "-rp (the joint partitioner already shards relation rows)")
		}
		if len(bad) > 0 {
			return fmt.Errorf("-partitioned cannot be combined with %s", strings.Join(bad, "; "))
		}
	} else {
		for _, f := range []string{"partition-by", "partition-slack"} {
			if explicit[f] {
				return fmt.Errorf("-%s tunes the row partitioner; it needs -partitioned", f)
			}
		}
	}
	return nil
}

// runPS trains the parameter-server baseline and prints a summary shaped
// like the main trainer's, so the architectures compare side by side.
func runPS(d *kg.Dataset, modelName string, dim int, optName string, batch int, lr float64, epochs, negs int, seed uint64, workers, servers int) error {
	pcfg := ps.DefaultConfig()
	pcfg.ModelName = modelName
	pcfg.Dim = dim
	pcfg.OptimizerName = optName
	pcfg.BatchSize = batch
	pcfg.BaseLR = lr
	pcfg.MaxEpochs = epochs
	pcfg.NegSamples = negs
	pcfg.Seed = seed
	fmt.Printf("training %s (%s) on %d worker(s) + %d server(s), strategy ps\n",
		modelName, optName, workers, servers)
	res, err := ps.Train(pcfg, d, workers, servers)
	if err != nil {
		return err
	}
	fmt.Printf("\nfinished after %d epochs\n", res.Epochs)
	fmt.Printf("total training time   %.3f virtual hours\n", res.TotalHours)
	fmt.Printf("communication         %.3f virtual hours, %.1f MB moved (%.1f MB pull, %.1f MB push)\n",
		res.CommHours, float64(res.CommBytes)/1e6, float64(res.PullBytes)/1e6, float64(res.PushBytes)/1e6)
	fmt.Printf("test TCA              %.1f%%\n", res.TCA)
	fmt.Printf("test filtered MRR     %.3f\n", res.MRR)
	return nil
}

// writePartitionMetrics appends the partition plan's quality figures to a
// Prometheus scrape, next to the transport counters.
func writePartitionMetrics(w io.Writer, p *partition.Plan) {
	q := p.Quality()
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP kgedist_partition_%s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE kgedist_partition_%s gauge\n", name)
		fmt.Fprintf(w, "kgedist_partition_%s{algo=%q} %g\n", name, p.Algo, v)
	}
	gauge("ranks", "World size the row partition was built for.", float64(p.Ranks))
	gauge("cut_ratio", "Fraction of training triples touching more than one shard.", q.CutRatio)
	gauge("remote_row_fraction", "Fraction of per-triple row references owned by another rank.", q.RemoteRowFraction)
	gauge("entity_balance", "Largest entity shard relative to a perfectly even split.", q.EntityBalance)
	gauge("relation_balance", "Largest relation shard relative to a perfectly even split.", q.RelationBalance)
	gauge("triple_balance", "Largest per-rank triple load relative to a perfectly even split.", q.TripleBalance)
	gauge("max_entity_shard", "Entity rows held by the fullest rank.", float64(q.MaxEntityShard))
}

func loadDataset(preset, dir, namedDir string, seed uint64) (*kg.Dataset, error) {
	if namedDir != "" {
		d, _, err := kg.LoadNamedDir(namedDir)
		return d, err
	}
	if dir != "" {
		return kg.LoadDir(dir)
	}
	switch preset {
	case "fb15k-mini":
		return kg.Generate(kg.FB15KMini(seed)), nil
	case "fb250k-mini":
		return kg.Generate(kg.FB250KMini(seed)), nil
	case "fb15k-full":
		return kg.Generate(kg.FB15KFull(seed)), nil
	case "fb250k-full":
		return kg.Generate(kg.FB250KFull(seed)), nil
	}
	return nil, fmt.Errorf("unknown dataset preset %q", preset)
}
