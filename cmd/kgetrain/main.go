// Command kgetrain trains a knowledge-graph embedding model with any
// combination of the paper's five strategies on a simulated cluster, or —
// with -peers/-rank — as one rank of a multi-process job over TCP.
//
// Examples:
//
//	kgetrain -dataset fb15k-mini -nodes 8 -comm allreduce
//	kgetrain -dataset fb250k-mini -nodes 16 -comm dynamic -rs -quant 1bit-max -rp -ss -negs 5
//	kgetrain -data ./mydataset -nodes 4    # OpenKE-layout directory
//
// Multi-process over TCP (run one command per rank; rank 0 coordinates):
//
//	kgetrain -peers host0:7000,host1:7000,host2:7000 -rank 0 -comm dynamic
//	kgetrain -peers host0:7000,host1:7000,host2:7000 -rank 1 -comm dynamic
//	kgetrain -peers host0:7000,host1:7000,host2:7000 -rank 2 -comm dynamic
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/simnet"
	"kgedist/internal/trace"
	"kgedist/internal/transport"
	"kgedist/internal/transport/tcptransport"
)

// buildTag is exchanged during the TCP rendezvous handshake; every rank of
// a multi-process job must present the same tag, which catches a stale
// binary joining a cluster of newer ones.
const buildTag = "kgetrain-1"

func main() {
	var (
		dataset   = flag.String("dataset", "fb15k-mini", "synthetic preset: fb15k-mini, fb250k-mini, fb15k-full, fb250k-full")
		dataDir   = flag.String("data", "", "load an OpenKE-layout dataset directory instead of a preset")
		namedDir  = flag.String("nameddata", "", "load a Freebase-text-layout directory (train.txt/valid.txt/test.txt of name triples, as FB15K is distributed)")
		nodes     = flag.Int("nodes", 1, "simulated cluster size")
		modelName = flag.String("model", "complex", "model: complex, distmult, transe, rotate, transh, simple")
		lossName  = flag.String("loss", "logistic", "objective: logistic, margin")
		margin    = flag.Float64("margin", 1.0, "ranking margin for -loss margin")
		dim       = flag.Int("dim", 32, "embedding dimension")
		optName   = flag.String("opt", "adam", "optimizer: adam, adagrad, sgd")
		batch     = flag.Int("batch", 2000, "per-worker batch size")
		lr        = flag.Float64("lr", 0.01, "base learning rate (scaled by min(4, nodes))")
		epochs    = flag.Int("epochs", 80, "maximum epochs")
		comm      = flag.String("comm", "allreduce", "gradient exchange: allreduce, allgather, dynamic")
		probe     = flag.Int("probe", 10, "dynamic probe period k")
		rs        = flag.Bool("rs", false, "random selection of gradient vectors")
		quant     = flag.String("quant", "none", "quantization: none, 1bit-max, 1bit-avg, 2bit")
		ef        = flag.Bool("ef", false, "error-feedback residuals for quantization")
		rp        = flag.Bool("rp", false, "relation partition")
		ss        = flag.Bool("ss", false, "negative sample selection (train hardest of n)")
		negs      = flag.Int("negs", 1, "negative samples n per positive")
		seed      = flag.Uint64("seed", 1, "random seed")
		save      = flag.String("save", "", "write the trained model to this checkpoint file")
		traceOut  = flag.String("trace", "", "write a JSONL run trace to this file")

		faults    = flag.String("faults", "", "fault plan, e.g. 'crash:2@350,slow:0@100+50x4,delay:0@200+30x8' (kind:RANK@T[+DURxFACTOR], virtual seconds)")
		ckptEvery = flag.Int("checkpoint-every", 0, "snapshot the merged model every N epochs (recovery point; 0 = off)")
		ckptPath  = flag.String("checkpoint", "", "persist snapshots crash-safely to this file (needs -checkpoint-every)")
		recoverOn = flag.Bool("recover", false, "shrink-and-continue on rank failure instead of aborting")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")

		peers       = flag.String("peers", "", "multi-process mode: comma-separated rank addresses (rank 0 first, the coordinator); one kgetrain per rank")
		rank        = flag.Int("rank", -1, "this process's rank into -peers")
		listen      = flag.String("listen", "", "bind address override for this rank (default: its -peers entry)")
		metricsAddr = flag.String("metrics-addr", "", "serve transport health metrics in Prometheus format at this address (/metrics)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC() // capture live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	d, err := loadDataset(*dataset, *dataDir, *namedDir, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := core.DefaultConfig()
	cfg.ModelName = *modelName
	cfg.Dim = *dim
	cfg.OptimizerName = *optName
	cfg.LossName = *lossName
	cfg.Margin = *margin
	cfg.BatchSize = *batch
	cfg.BaseLR = *lr
	cfg.MaxEpochs = *epochs
	cfg.ProbeEvery = *probe
	cfg.ErrorFeedback = *ef
	cfg.RelationPartition = *rp
	cfg.NegSelect = *ss
	cfg.NegSamples = *negs
	cfg.Seed = *seed
	switch *comm {
	case "allreduce":
		cfg.Comm = core.CommAllReduce
	case "allgather":
		cfg.Comm = core.CommAllGather
	case "dynamic":
		cfg.Comm = core.CommDynamic
	default:
		fmt.Fprintf(os.Stderr, "unknown -comm %q\n", *comm)
		os.Exit(1)
	}
	if *rs {
		cfg.Select = grad.SelectBernoulli
	}
	switch *quant {
	case "none":
	case "1bit-max":
		cfg.Quant = grad.OneBitMax
	case "1bit-avg":
		cfg.Quant = grad.OneBitAvg
	case "2bit":
		cfg.Quant = grad.TwoBitTernary
	default:
		fmt.Fprintf(os.Stderr, "unknown -quant %q\n", *quant)
		os.Exit(1)
	}
	if *faults != "" {
		plan, err := simnet.ParseFaultPlan(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.FaultPlan = plan
	}
	cfg.CheckpointEvery = *ckptEvery
	cfg.CheckpointPath = *ckptPath
	cfg.Recover = *recoverOn

	fmt.Printf("dataset %s: %d entities, %d relations, %d/%d/%d train/valid/test\n",
		d.Name, d.NumEntities, d.NumRelations, len(d.Train), len(d.Valid), len(d.Test))

	var res *core.Result
	if *peers != "" {
		res, err = trainOverTCP(cfg, d, *peers, *rank, *listen, *metricsAddr, *nodes)
	} else {
		if *metricsAddr != "" {
			err = fmt.Errorf("-metrics-addr exposes transport health; it needs multi-process mode (-peers)")
		} else if *rank >= 0 {
			err = fmt.Errorf("-rank needs -peers (multi-process mode)")
		} else {
			fmt.Printf("training %s (%s) on %d node(s), strategy %s\n",
				cfg.ModelName, cfg.OptimizerName, *nodes, cfg.StrategyLabel())
			res, err = core.Train(cfg, d, *nodes)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nconverged after %d epochs\n", res.Epochs)
	fmt.Printf("total training time   %.3f virtual hours (%.1f s/epoch avg)\n",
		res.TotalHours, res.AvgEpochSeconds())
	fmt.Printf("communication         %.3f virtual hours, %.1f MB moved (%.1f MB relation)\n",
		res.CommHours, float64(res.CommBytes)/1e6, float64(res.RelationCommBytes)/1e6)
	if res.SwitchedAtEpoch > 0 {
		fmt.Printf("dynamic switch        all-gather from epoch %d\n", res.SwitchedAtEpoch)
	}
	if rc := res.Recovery; rc.FaultsInjected > 0 || rc.Checkpoints > 0 {
		fmt.Printf("fault tolerance       %d fault(s) injected, %d rank failure(s), %d recover(y/ies), %d epoch(s) replayed\n",
			rc.FaultsInjected, rc.RankFailures, rc.Recoveries, rc.EpochsLost)
		fmt.Printf("                      %d checkpoint(s), %.1f virtual s recovering, finished on %d node(s)%s\n",
			rc.Checkpoints, rc.RecoverySeconds, rc.FinalNodes,
			map[bool]string{true: " (degraded)", false: ""}[rc.Degraded])
	}
	fmt.Printf("test TCA              %.1f%%\n", res.TCA)
	fmt.Printf("test filtered MRR     %.3f (Hits@10 %.3f)\n", res.MRR, res.Hits10)
	if *save != "" {
		m := model.New(cfg.ModelName, cfg.Dim)
		if err := model.SaveCheckpoint(*save, m, res.FinalParams); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint saved to   %s\n", *save)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		meta := trace.Meta{Dataset: d.Name, Strategy: res.Strategy, Nodes: *nodes, Seed: *seed}
		if err := trace.WriteRun(f, meta, res); err != nil {
			_ = f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to      %s\n", *traceOut)
	}
}

// trainOverTCP runs this process's rank of a multi-process job: rendezvous
// with the peers over TCP, train through core.TrainProcess, and optionally
// expose transport health metrics over HTTP while the job runs.
func trainOverTCP(cfg core.Config, d *kg.Dataset, peerList string, rank int, listen, metricsAddr string, nodes int) (*core.Result, error) {
	addrs := strings.Split(peerList, ",")
	for i, a := range addrs {
		addrs[i] = strings.TrimSpace(a)
		if addrs[i] == "" {
			return nil, fmt.Errorf("-peers entry %d is empty", i)
		}
	}
	if len(addrs) < 2 {
		return nil, fmt.Errorf("-peers needs at least 2 addresses, got %d", len(addrs))
	}
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("-rank %d out of range for %d peers", rank, len(addrs))
	}
	if nodes != 1 {
		return nil, fmt.Errorf("-nodes conflicts with -peers: the world size is the peer count (%d)", len(addrs))
	}
	if cfg.FaultPlan != nil {
		return nil, fmt.Errorf("-faults drives the simulated cluster; over TCP faults come from the real sockets")
	}
	listenAddr := listen
	if listenAddr == "" {
		listenAddr = addrs[rank]
	}

	met := transport.NewMetrics()
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			met.WritePrometheus(w)
		})
		go func() {
			if err := http.ListenAndServe(metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			}
		}()
		fmt.Printf("transport metrics at  http://%s/metrics\n", metricsAddr)
	}

	fmt.Printf("rank %d/%d rendezvous with coordinator %s (listening on %s)\n",
		rank, len(addrs), addrs[0], listenAddr)
	ep, err := tcptransport.Dial(tcptransport.Options{
		Rank:            rank,
		WorldSize:       len(addrs),
		CoordinatorAddr: addrs[0],
		ListenAddr:      listenAddr,
		BuildTag:        buildTag,
		Metrics:         met,
	})
	if err != nil {
		return nil, fmt.Errorf("rendezvous: %w", err)
	}
	fmt.Printf("training %s (%s) as rank %d of %d processes, strategy %s\n",
		cfg.ModelName, cfg.OptimizerName, rank, len(addrs), cfg.StrategyLabel())
	return core.TrainProcess(cfg, d, ep)
}

func loadDataset(preset, dir, namedDir string, seed uint64) (*kg.Dataset, error) {
	if namedDir != "" {
		d, _, err := kg.LoadNamedDir(namedDir)
		return d, err
	}
	if dir != "" {
		return kg.LoadDir(dir)
	}
	switch preset {
	case "fb15k-mini":
		return kg.Generate(kg.FB15KMini(seed)), nil
	case "fb250k-mini":
		return kg.Generate(kg.FB250KMini(seed)), nil
	case "fb15k-full":
		return kg.Generate(kg.FB15KFull(seed)), nil
	case "fb250k-full":
		return kg.Generate(kg.FB250KFull(seed)), nil
	}
	return nil, fmt.Errorf("unknown dataset preset %q", preset)
}
