// Command kgetrace analyzes a JSONL training trace written by
// kgetrain -trace: it prints the run summary and per-epoch statistics, and
// optionally renders the convergence and epoch-time curves as SVG.
//
// Example:
//
//	kgetrain -dataset fb15k-mini -nodes 4 -trace run.jsonl
//	kgetrace -in run.jsonl -svg ./plots
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"kgedist/internal/metrics"
	"kgedist/internal/svgplot"
	"kgedist/internal/trace"
)

func main() {
	var (
		in     = flag.String("in", "", "trace file (required)")
		svgDir = flag.String("svg", "", "render convergence and epoch-time curves into this directory")
		last   = flag.Int("tail", 0, "only print the last N epochs (0 = all)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "kgetrace: -in is required")
		os.Exit(1)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	run, err := trace.Read(f)
	_ = f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("run: %s on %s, %d nodes (seed %d)\n",
		run.Meta.Strategy, run.Meta.Dataset, run.Meta.Nodes, run.Meta.Seed)
	if s := run.Summary; s != nil {
		fmt.Printf("summary: %d epochs, %.3f virtual h total, TCA %.1f%%, MRR %.3f, %.1f MB moved\n",
			s.Epochs, s.TotalHours, s.TCA, s.MRR, float64(s.CommBytes)/1e6)
		if s.SwitchedAtEpoch > 0 {
			fmt.Printf("dynamic switch at epoch %d\n", s.SwitchedAtEpoch)
		}
	}

	tb := &metrics.Table{
		Title:   "per-epoch",
		Headers: []string{"epoch", "seconds", "comm-s", "MB", "val%", "mode", "lr"},
	}
	epochs := run.Epochs
	if *last > 0 && len(epochs) > *last {
		epochs = epochs[len(epochs)-*last:]
	}
	for _, e := range epochs {
		tb.AddRow(e.Epoch, e.Seconds, e.CommSeconds, float64(e.CommBytes)/1e6,
			e.ValAccuracy, e.Mode, e.LR)
	}
	fmt.Println()
	tb.Render(os.Stdout)

	if *svgDir != "" {
		if err := renderCurves(run, *svgDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func renderCurves(run *trace.Run, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	conv := metrics.Series{Name: "validation accuracy"}
	et := metrics.Series{Name: "epoch seconds"}
	for _, e := range run.Epochs {
		x := float64(e.Epoch)
		conv.X = append(conv.X, x)
		conv.Y = append(conv.Y, e.ValAccuracy)
		et.X = append(et.X, x)
		et.Y = append(et.Y, e.Seconds)
	}
	figs := []*metrics.Figure{
		{Title: "convergence", XLabel: "epoch", YLabel: "val %", Series: []metrics.Series{conv}},
		{Title: "epoch time", XLabel: "epoch", YLabel: "virtual seconds", Series: []metrics.Series{et}},
	}
	for _, fig := range figs {
		path := filepath.Join(dir, fig.Title+".svg")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := svgplot.Render(fig, f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("(svg written to %s)\n", path)
	}
	return nil
}
