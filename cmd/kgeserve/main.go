// Command kgeserve is the embedding inference server: it loads a KGE2
// checkpoint written by kgetrain into an immutable sharded store and
// serves triple scoring, top-K link prediction and entity similarity over
// HTTP JSON, with micro-batched predict sweeps, a sharded LRU result
// cache, and atomic hot checkpoint reload.
//
// Example:
//
//	kgetrain -dataset fb15k-mini -save model.kge
//	kgeserve -model model.kge -dataset fb15k-mini -addr :8080 &
//	curl -s localhost:8080/v1/predict -d '{"head":0,"relation":0,"k":5,"filtered":true}'
//	curl -s localhost:8080/v1/neighbors -d '{"entity":0,"k":5}'
//	curl -s -X POST localhost:8080/v1/reload    # pick up a retrained model.kge
//	curl -s localhost:8080/metrics
//
// Endpoints: POST /v1/score, /v1/predict, /v1/neighbors, /v1/reload;
// GET /healthz, /metrics. Shutdown on SIGINT/SIGTERM drains in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/serve"
)

func main() {
	var (
		ckpt        = flag.String("model", "", "KGE2 checkpoint written by kgetrain -save (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		dataDir     = flag.String("data", "", "OpenKE-layout dataset directory for filtered ranking")
		preset      = flag.String("dataset", "", "synthetic preset instead of -data: fb15k-mini, fb250k-mini")
		seed        = flag.Uint64("seed", 1, "random seed for -dataset generation")
		shardRows   = flag.Int("shard-rows", 0, "entity rows per store shard (0 = default)")
		cacheSize   = flag.Int("cache", 4096, "result cache entries (0 disables caching)")
		maxBatch    = flag.Int("batch-max", 64, "max predict queries coalesced into one sweep")
		batchWindow = flag.Duration("batch-window", time.Millisecond, "how long the first query of a batch waits for company")
		drain       = flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	)
	flag.Parse()
	if *ckpt == "" {
		fmt.Fprintln(os.Stderr, "kgeserve: -model is required")
		os.Exit(1)
	}

	// Fail fast on a bad or mismatched checkpoint: the header (plus full
	// CRC sweep) costs one file pass, no allocation.
	info, err := model.ReadCheckpointInfo(*ckpt)
	if err != nil {
		log.Fatalf("kgeserve: %v", err)
	}
	log.Printf("checkpoint %s: %s", *ckpt, info)

	// A dataset is optional; with one, /v1/predict can rank filtered (known
	// facts skipped) and ids must line up with the checkpoint.
	var filter *kg.FilterIndex
	var d *kg.Dataset
	switch {
	case *dataDir != "":
		d, err = kg.LoadDir(*dataDir)
	case *preset == "fb15k-mini":
		d = kg.Generate(kg.FB15KMini(*seed))
	case *preset == "fb250k-mini":
		d = kg.Generate(kg.FB250KMini(*seed))
	case *preset != "":
		err = fmt.Errorf("unknown preset %q", *preset)
	}
	if err != nil {
		log.Fatalf("kgeserve: loading dataset: %v", err)
	}
	if d != nil {
		if d.NumEntities != info.Entities || d.NumRelations != info.Relations {
			log.Fatalf("kgeserve: checkpoint shape (%d entities, %d relations) does not match dataset (%d, %d)",
				info.Entities, info.Relations, d.NumEntities, d.NumRelations)
		}
		filter = kg.NewFilterIndex(d)
		log.Printf("filtered ranking enabled over %d known triples", filter.Len())
	}

	srv, err := serve.New(serve.Config{
		CheckpointPath: *ckpt,
		ShardRows:      *shardRows,
		CacheSize:      *cacheSize,
		MaxBatch:       *maxBatch,
		BatchWindow:    *batchWindow,
		Filter:         filter,
	})
	if err != nil {
		log.Fatalf("kgeserve: %v", err)
	}
	st := srv.Store()
	log.Printf("store ready: %d entities x %d floats in %d shards, %d relations",
		st.NumEntities(), st.Model().Width(), st.NumShards(), st.NumRelations())

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	if *pprofAddr != "" {
		// Debug-only listener on its own mux so the profiling endpoints are
		// never reachable through the public serving address.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("kgeserve: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		srv.Close()
		log.Fatalf("kgeserve: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight requests finish, then
	// stop the batcher (order matters — handlers block on batched sweeps).
	log.Printf("shutting down: draining for up to %s", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("kgeserve: drain incomplete: %v", err)
	}
	srv.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("kgeserve: %v", err)
	}
	log.Printf("bye")
}
