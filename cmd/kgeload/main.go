// Command kgeload drives sustained concurrent predict traffic against a
// kgeserve instance and records what the server actually delivered: p50/p99
// latency, achieved QPS at a target arrival rate, and — for mode=approx —
// recall@k against the exact ranking. Results merge into the repo's
// BENCH_<date>.json capture (kgedist-bench/v1), so serving performance is
// tracked next to the kernel microbenchmarks.
//
// Point it at a live server, or let it self-host one over a generated
// clustered checkpoint (trained-like geometry; see model.ClusteredInit):
//
//	kgeload -addr http://localhost:8080 -qps 400 -duration 10s
//	kgeload -entities 50000 -dim 64 -qps 400 -json BENCH_$(date +%F).json
//
// The load phase is open-loop: arrivals are paced at -qps regardless of
// completions, so a server that cannot keep up shows queueing in its p99
// and an achieved QPS below target, exactly as production would see it.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"kgedist/internal/benchfmt"
	"kgedist/internal/model"
	"kgedist/internal/serve"
	"kgedist/internal/xrand"
)

func main() {
	var (
		addr       = flag.String("addr", "", "base URL of a live kgeserve (e.g. http://localhost:8080); empty self-hosts one")
		ckpt       = flag.String("model", "", "checkpoint to self-host (empty = generate a clustered one)")
		genModel   = flag.String("gen-model", "transe", "model of the generated checkpoint")
		entities   = flag.Int("entities", 50000, "entities in the generated checkpoint")
		relations  = flag.Int("relations", 16, "relations in the generated checkpoint")
		dim        = flag.Int("dim", 64, "dimension of the generated checkpoint")
		clusters   = flag.Int("clusters", 512, "entity clusters in the generated checkpoint")
		spread     = flag.Float64("spread", 0.25, "within-cluster noise ratio of the generated checkpoint")
		seed       = flag.Uint64("seed", 7, "seed for checkpoint generation and query sampling")
		qps        = flag.Float64("qps", 400, "target sustained arrival rate per mode")
		duration   = flag.Duration("duration", 5*time.Second, "load phase length per mode")
		conc       = flag.Int("conc", 2*runtime.GOMAXPROCS(0), "concurrent load workers")
		k          = flag.Int("k", 10, "top-k per predict")
		candidates = flag.Int("candidates", serve.DefaultCandidates, "approx stage-1 budget")
		fidelity   = flag.Int("fidelity", 200, "queries in the recall@k fidelity phase (0 skips)")
		out        = flag.String("json", "", "BENCH_<date>.json to merge results into (empty = print only)")
		commit     = flag.String("commit", "", "git commit hash to stamp into a fresh capture")
		minRecall  = flag.Float64("min-recall", 0, "fail when recall@k falls below this (0 disables)")
		minSpeedup = flag.Float64("min-speedup", 0, "fail when exact p50 / approx p50 falls below this (0 disables)")
	)
	flag.Parse()

	base := *addr
	if base == "" {
		var stop func()
		var err error
		base, stop, err = selfHost(*ckpt, *genModel, *dim, *entities, *relations, *clusters, *spread, *seed)
		if err != nil {
			log.Fatalf("kgeload: %v", err)
		}
		defer stop()
	}
	numEntities, numRelations, err := shape(base)
	if err != nil {
		log.Fatalf("kgeload: probing %s: %v", base, err)
	}
	log.Printf("target %s: %d entities, %d relations", base, numEntities, numRelations)

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *conc,
		MaxIdleConnsPerHost: *conc,
	}}
	rng := xrand.New(*seed).Split(0x10ad)
	queries := sampleQueries(rng, 1024, numEntities, numRelations)

	var records []benchfmt.Benchmark

	// Fidelity phase: per-query recall@k of approx against exact.
	recall := -1.0
	if *fidelity > 0 {
		recall, err = measureRecall(client, base, queries[:min(*fidelity, len(queries))], *k, *candidates)
		if err != nil {
			log.Fatalf("kgeload: fidelity: %v", err)
		}
		log.Printf("recall@%d (c=%d) = %.4f over %d queries", *k, *candidates, recall, min(*fidelity, len(queries)))
		records = append(records, benchfmt.Benchmark{
			Name:    fmt.Sprintf("BenchmarkServeRecall/k=%d/c=%d", *k, *candidates),
			Package: "kgedist/cmd/kgeload",
			Runs:    int64(min(*fidelity, len(queries))),
			NsPerOp: 1, // the measurement is the metric, not the timing
			Metrics: map[string]float64{"recall_at_k": recall},
		})
	}

	// Load phases: exact then approx, same arrival process.
	p50 := map[string]float64{}
	for _, mode := range []string{"exact", "approx"} {
		res := runLoad(client, base, mode, queries, *k, *candidates, *qps, *duration, *conc)
		if res.ok == 0 {
			log.Fatalf("kgeload: mode=%s completed zero requests (%d errors)", mode, res.errs)
		}
		sort.Float64s(res.latencies)
		p50[mode] = percentile(res.latencies, 0.50)
		p99 := percentile(res.latencies, 0.99)
		achieved := float64(res.ok) / res.elapsed.Seconds()
		log.Printf("mode=%s: %d ok, %d errors, p50 %.3fms p99 %.3fms, %.1f/%.1f qps",
			mode, res.ok, res.errs, p50[mode]*1e3, p99*1e3, achieved, *qps)
		records = append(records, benchfmt.Benchmark{
			Name:    fmt.Sprintf("BenchmarkServeLoad/mode=%s", mode),
			Package: "kgedist/cmd/kgeload",
			Runs:    res.ok,
			NsPerOp: mean(res.latencies) * 1e9,
			Metrics: map[string]float64{
				"p50_ms":       p50[mode] * 1e3,
				"p99_ms":       p99 * 1e3,
				"qps_target":   *qps,
				"qps_achieved": achieved,
				"errors":       float64(res.errs),
				"k":            float64(*k),
				"candidates":   float64(*candidates),
			},
		})
	}
	speedup := p50["exact"] / p50["approx"]
	log.Printf("approx p50 speedup over exact: %.2fx", speedup)

	if *out != "" {
		if err := mergeCapture(*out, *commit, records); err != nil {
			log.Fatalf("kgeload: %v", err)
		}
		log.Printf("merged %d record(s) into %s", len(records), *out)
	}
	if *minRecall > 0 && recall >= 0 && recall < *minRecall {
		log.Fatalf("kgeload: recall@%d %.4f below floor %.4f", *k, recall, *minRecall)
	}
	if *minSpeedup > 0 && speedup < *minSpeedup {
		log.Fatalf("kgeload: p50 speedup %.2fx below floor %.2fx", speedup, *minSpeedup)
	}
}

// selfHost generates (or loads) a checkpoint and serves it on a loopback
// listener. The result cache is disabled so measured latencies are real
// scoring work, not cache hits.
func selfHost(ckpt, name string, dim, entities, relations, clusters int, spread float64, seed uint64) (string, func(), error) {
	if ckpt == "" {
		dir, err := os.MkdirTemp("", "kgeload")
		if err != nil {
			return "", nil, err
		}
		m := model.New(name, dim)
		p := model.NewParams(m, entities, relations)
		p.ClusteredInit(m, clusters, spread, xrand.New(seed))
		ckpt = filepath.Join(dir, "load.kge")
		if err := model.SaveCheckpoint(ckpt, m, p); err != nil {
			return "", nil, err
		}
		log.Printf("generated %s checkpoint: %d entities x dim %d, %d clusters", name, entities, dim, clusters)
	}
	srv, err := serve.New(serve.Config{
		CheckpointPath: ckpt,
		CacheSize:      0,
		MaxBatch:       64,
		BatchWindow:    time.Millisecond,
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	stop := func() {
		_ = httpSrv.Close()
		srv.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// shape reads entity/relation counts from the server's /healthz.
func shape(base string) (entities, relations int, err error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close() //kgelint:ignore droppederr read-only close
	var health struct {
		Checkpoint struct {
			Entities  int `json:"entities"`
			Relations int `json:"relations"`
		} `json:"checkpoint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return 0, 0, err
	}
	if health.Checkpoint.Entities <= 0 || health.Checkpoint.Relations <= 0 {
		return 0, 0, fmt.Errorf("implausible shape %+v", health.Checkpoint)
	}
	return health.Checkpoint.Entities, health.Checkpoint.Relations, nil
}

type query struct{ h, r int }

func sampleQueries(rng *xrand.RNG, n, entities, relations int) []query {
	qs := make([]query, n)
	for i := range qs {
		qs[i] = query{h: rng.Intn(entities), r: rng.Intn(relations)}
	}
	return qs
}

type completion struct {
	Entity int32 `json:"entity"`
}

type predictBody struct {
	Completions []completion `json:"completions"`
}

func predict(client *http.Client, base, mode string, q query, k, candidates int) (*predictBody, error) {
	body := map[string]any{"head": q.h, "relation": q.r, "k": k}
	url := base + "/v1/predict"
	if mode == "approx" {
		url += "?mode=approx"
		body["candidates"] = candidates
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //kgelint:ignore droppederr read-only close
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("predict %s: HTTP %d", mode, resp.StatusCode)
	}
	var out predictBody
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// measureRecall compares the approx and exact top-k entity sets per query
// and averages |approx ∩ exact| / k.
func measureRecall(client *http.Client, base string, qs []query, k, candidates int) (float64, error) {
	var total float64
	for _, q := range qs {
		exact, err := predict(client, base, "exact", q, k, candidates)
		if err != nil {
			return 0, err
		}
		approx, err := predict(client, base, "approx", q, k, candidates)
		if err != nil {
			return 0, err
		}
		want := make(map[int32]bool, len(exact.Completions))
		for _, c := range exact.Completions {
			want[c.Entity] = true
		}
		hit := 0
		for _, c := range approx.Completions {
			if want[c.Entity] {
				hit++
			}
		}
		if len(exact.Completions) > 0 {
			total += float64(hit) / float64(len(exact.Completions))
		}
	}
	return total / float64(len(qs)), nil
}

type loadResult struct {
	ok        int64
	errs      int64
	latencies []float64 // seconds, successful requests only
	elapsed   time.Duration
}

// runLoad paces arrivals at the target QPS for the given duration and fans
// them out to conc workers. Arrivals that find every worker busy queue in
// the channel — open-loop, so server-side saturation surfaces as tail
// latency instead of silently throttling the offered load.
func runLoad(client *http.Client, base, mode string, qs []query, k, candidates int, qps float64, d time.Duration, conc int) loadResult {
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	arrivals := make(chan int, 4096)
	var wg sync.WaitGroup
	var mu sync.Mutex
	res := loadResult{}

	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lats []float64
			var ok, errs int64
			for i := range arrivals {
				q := qs[i%len(qs)]
				start := time.Now()
				_, err := predict(client, base, mode, q, k, candidates)
				if err != nil {
					errs++
					continue
				}
				ok++
				lats = append(lats, time.Since(start).Seconds())
			}
			mu.Lock()
			res.ok += ok
			res.errs += errs
			res.latencies = append(res.latencies, lats...)
			mu.Unlock()
		}()
	}

	start := time.Now()
	tick := time.NewTicker(interval)
	deadline := time.After(d)
	i := 0
pace:
	for {
		select {
		case <-deadline:
			break pace
		case <-tick.C:
			arrivals <- i
			i++
		}
	}
	tick.Stop()
	close(arrivals)
	wg.Wait()
	res.elapsed = time.Since(start)
	return res
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// mergeCapture folds the load records into the BENCH file at path: an
// existing capture keeps its microbenchmark entries (prior ServeLoad /
// ServeRecall records are replaced), a missing one is created fresh.
func mergeCapture(path, commit string, records []benchfmt.Benchmark) error {
	f := &benchfmt.File{Schema: benchfmt.Schema, Commit: commit, GoVersion: runtime.Version()}
	if raw, err := os.Open(path); err == nil {
		prev, derr := benchfmt.Decode(raw)
		_ = raw.Close()
		if derr != nil {
			return fmt.Errorf("existing %s: %w", path, derr)
		}
		f = prev
		if commit != "" {
			// An explicit -commit re-stamps the capture: the merged file
			// describes the tree the load numbers were measured on.
			f.Commit = commit
		}
		kept := f.Benchmarks[:0]
		for _, b := range f.Benchmarks {
			if b.Package != "kgedist/cmd/kgeload" {
				kept = append(kept, b)
			}
		}
		f.Benchmarks = kept
	}
	f.Date = time.Now().UTC().Format(time.RFC3339)
	f.Benchmarks = append(f.Benchmarks, records...)
	if err := f.Validate(); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".kgeload-*")
	if err != nil {
		return err
	}
	if err := f.Encode(tmp); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
