// Command kgeverify is the statistical verification gate behind
// `make verify-stats`. It has three modes, combinable in one invocation:
//
//	kgeverify                      # golden regression + property checks
//	kgeverify -update              # re-record the golden runs
//	kgeverify -soak -iters 5       # chaos soak: crash/recover/serve loops
//	kgeverify -tcp                 # TCP transport vs simnet trajectory identity
//
// Golden regression re-runs every strategy scenario with fixed seeds and
// diffs the convergence curves against the committed reference
// (internal/testkit/testdata/goldens.json), diagnosing any drift down to
// the first diverging epoch. Property checks test the stochastic contracts
// (quantizer/selection unbiasedness, partition invariants, switch
// permanence, hardest-negative ordering) under CLT-derived bounds. The
// soak runs randomized-but-seeded train->crash->recover->checkpoint->serve
// cycles and asserts MRR within tolerance plus no lost updates.
//
// Exit status is 0 only when every requested check passes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"kgedist/internal/testkit"
)

// defaultGoldens locates the committed golden file relative to the module
// root when run via `go run ./cmd/kgeverify` from the repo; -goldens
// overrides for other layouts.
const defaultGoldens = "internal/testkit/testdata/goldens.json"

func main() {
	var (
		goldens = flag.String("goldens", defaultGoldens, "path to the golden-run reference file")
		update  = flag.Bool("update", false, "re-record goldens instead of verifying")
		noGold  = flag.Bool("no-goldens", false, "skip the golden regression sweep")
		noProps = flag.Bool("no-props", false, "skip the statistical property checks")
		soak    = flag.Bool("soak", false, "run the chaos soak (train/crash/recover/serve loops)")
		tcp     = flag.Bool("tcp", false, "verify the TCP transport is trajectory-identical to simnet (3 ranks over localhost)")
		iters   = flag.Int("iters", 3, "soak iterations")
		seed    = flag.Uint64("seed", 1, "seed for property checks and the soak")
		soakDir = flag.String("soak-dir", "", "scratch dir for soak checkpoints (default: a temp dir)")
		verbose = flag.Bool("v", false, "per-scenario progress")
	)
	flag.Parse()

	report := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	progress := report
	if !*verbose {
		progress = nil
	}

	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		failed = true
	}

	if *update {
		report("recording goldens (%d scenarios)...", len(testkit.Scenarios()))
		gf, err := testkit.RecordGoldens(report)
		if err != nil {
			fail("kgeverify: %v", err)
			os.Exit(1)
		}
		if err := testkit.SaveGoldens(*goldens, gf); err != nil {
			fail("kgeverify: %v", err)
			os.Exit(1)
		}
		report("wrote %s (%d runs)", *goldens, len(gf.Runs))
		return
	}

	if !*noGold {
		gf, err := testkit.LoadGoldens(*goldens)
		if err != nil {
			fail("kgeverify: %v", err)
		} else {
			drifts := testkit.VerifyGoldens(gf, testkit.DefaultTolerance(), progress)
			for _, d := range drifts {
				fail("drift: %s", d)
			}
			report("golden regression: %d scenarios, %d drifts", len(testkit.Scenarios()), len(drifts))
		}
	}

	if !*noProps {
		results := testkit.AllPropertyChecks(*seed)
		bad := 0
		for _, r := range results {
			if !r.OK {
				bad++
				fail("property: %s", r)
			} else if progress != nil {
				progress("property: %s", r)
			}
		}
		report("property checks: %d checks, %d failures", len(results), bad)
		if bad > 0 {
			failed = true
		}
	}

	if *tcp {
		drifts := testkit.VerifyTCP(progress)
		for _, d := range drifts {
			fail("tcp drift: %s", d)
		}
		report("tcp golden: %d scenarios over 3 localhost ranks, %d drifts", len(testkit.TCPScenarios()), len(drifts))
	}

	if *soak {
		dir := *soakDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "kgeverify-soak-")
			if err != nil {
				fail("kgeverify: %v", err)
				os.Exit(1)
			}
			defer func() { _ = os.RemoveAll(tmp) }()
			dir = tmp
		}
		rep, err := testkit.Soak(testkit.SoakConfig{
			Seed: *seed, Iters: *iters, Dir: dir, Report: progress,
		})
		if err != nil {
			fail("soak: %v", err)
		}
		if rep != nil {
			report("soak: %d/%d iterations, %d faults injected, %d recoveries (GOMAXPROCS=%d)",
				len(rep.Iterations), *iters, rep.FaultsInjected, rep.Recoveries, runtime.GOMAXPROCS(0))
		}
	}

	if failed {
		// Leave a pointer to the update flow when goldens are what failed —
		// the most common legitimate cause is an intentional change.
		fmt.Fprintf(os.Stderr, "kgeverify: FAILED (if a change to training numerics is intentional, regenerate with: go run ./cmd/kgeverify -update -goldens %s)\n", filepath.ToSlash(*goldens))
		os.Exit(1)
	}
	fmt.Println("kgeverify: OK")
}
