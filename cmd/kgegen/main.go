// Command kgegen generates a synthetic knowledge-graph dataset and writes
// it to disk in the OpenKE benchmark layout (train2id.txt, valid2id.txt,
// test2id.txt, entity2id.txt, relation2id.txt).
//
// Example:
//
//	kgegen -out ./data/fb15k-mini -entities 3000 -relations 400 -triples 60000
package main

import (
	"flag"
	"fmt"
	"os"

	"kgedist/internal/kg"
)

func main() {
	var (
		out         = flag.String("out", "", "output directory (required)")
		entities    = flag.Int("entities", 3000, "number of entities")
		relations   = flag.Int("relations", 400, "number of relations")
		triples     = flag.Int("triples", 60000, "number of triples before dedup")
		communities = flag.Int("communities", 32, "planted community count")
		relZipf     = flag.Float64("relzipf", 1.0, "Zipf exponent over relations")
		entZipf     = flag.Float64("entzipf", 0.8, "Zipf exponent within a community")
		noise       = flag.Float64("noise", 0.05, "fraction of unconstrained triples")
		validFrac   = flag.Float64("valid", 0.05, "validation split fraction")
		testFrac    = flag.Float64("test", 0.05, "test split fraction")
		scale       = flag.Float64("scale", 1, "multiply -entities/-relations/-triples together (community structure preserved)")
		seed        = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "kgegen: -out is required")
		flag.Usage()
		os.Exit(1)
	}
	if *scale <= 0 {
		fmt.Fprintln(os.Stderr, "kgegen: -scale must be positive")
		os.Exit(1)
	}
	cfg := kg.GenConfig{
		Name:         "generated",
		Entities:     *entities,
		Relations:    *relations,
		Triples:      *triples,
		Communities:  *communities,
		RelationZipf: *relZipf,
		EntityZipf:   *entZipf,
		NoiseFrac:    *noise,
		ValidFrac:    *validFrac,
		TestFrac:     *testFrac,
		Seed:         *seed,
	}.Scaled(*scale)
	d := kg.Generate(cfg)
	if err := kg.SaveDir(d, *out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := kg.ComputeStats(d)
	fmt.Printf("wrote %s: %d entities, %d relations, %d/%d/%d train/valid/test triples\n",
		*out, d.NumEntities, d.NumRelations, len(d.Train), len(d.Valid), len(d.Test))
	fmt.Printf("stats: %d relations used, max relation count %d, avg entity degree %.1f (max %d)\n",
		st.UsedRelations, st.MaxRelationCount, st.AvgDegree, st.MaxDegree)
}
