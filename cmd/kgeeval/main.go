// Command kgeeval evaluates a saved embedding checkpoint against a dataset:
// filtered MRR, Hits@{1,3,10} and triple classification accuracy.
//
// Example:
//
//	kgetrain -dataset fb15k-mini -save model.kge
//	kgegen -out ./data/mini ... ; kgeeval -data ./data/mini -model model.kge
package main

import (
	"flag"
	"fmt"
	"os"

	"kgedist/internal/eval"
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

func main() {
	var (
		dataDir = flag.String("data", "", "OpenKE-layout dataset directory")
		preset  = flag.String("dataset", "", "synthetic preset instead of -data: fb15k-mini, fb250k-mini")
		ckpt    = flag.String("model", "", "checkpoint file written by kgetrain -save (required)")
		sample  = flag.Int("sample", 0, "subsample the test split for ranking (0 = all)")
		seed    = flag.Uint64("seed", 1, "random seed (dataset generation and corruption)")
	)
	flag.Parse()
	if *ckpt == "" {
		fmt.Fprintln(os.Stderr, "kgeeval: -model is required")
		os.Exit(1)
	}
	var d *kg.Dataset
	var err error
	switch {
	case *dataDir != "":
		d, err = kg.LoadDir(*dataDir)
	case *preset == "fb15k-mini":
		d = kg.Generate(kg.FB15KMini(*seed))
	case *preset == "fb250k-mini":
		d = kg.Generate(kg.FB250KMini(*seed))
	default:
		err = fmt.Errorf("kgeeval: pass -data <dir> or -dataset <preset>")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, p, err := model.LoadCheckpoint(*ckpt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if p.Entity.Rows != d.NumEntities || p.Relation.Rows != d.NumRelations {
		fmt.Fprintf(os.Stderr, "kgeeval: checkpoint shape (%d entities, %d relations) does not match dataset (%d, %d)\n",
			p.Entity.Rows, p.Relation.Rows, d.NumEntities, d.NumRelations)
		os.Exit(1)
	}
	filter := kg.NewFilterIndex(d)
	rng := xrand.New(*seed)
	lp := eval.LinkPrediction(m, p, d, filter, *sample, rng)
	tc := eval.TripleClassification(m, p, d, filter, rng)
	auc := eval.AUC(m, p, d, filter, rng)
	fmt.Printf("model %s (dim %d) on %s\n", m.Name(), m.Dim(), d.Name)
	fmt.Printf("test triples ranked   %d\n", lp.Triples)
	fmt.Printf("raw MRR               %.4f\n", lp.MRR)
	fmt.Printf("filtered MRR          %.4f\n", lp.FilteredMRR)
	fmt.Printf("Hits@1 / @3 / @10     %.3f / %.3f / %.3f\n", lp.Hits1, lp.Hits3, lp.Hits10)
	fmt.Printf("filtered mean rank    %.1f\n", lp.MR)
	fmt.Printf("TCA                   %.1f%%\n", tc.Accuracy)
	fmt.Printf("ROC-AUC               %.3f\n", auc)
}
