// Command kgeeval evaluates a saved embedding checkpoint against a dataset:
// filtered MRR, Hits@{1,3,10} and triple classification accuracy.
//
// Example:
//
//	kgetrain -dataset fb15k-mini -save model.kge
//	kgegen -out ./data/mini ... ; kgeeval -data ./data/mini -model model.kge
//
// With -json the full result set — including the per-side, per-relation-
// category breakdown — is emitted as one machine-readable JSON object, so
// serve smoke tests and bench tooling can diff quality without scraping
// the human-readable table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"kgedist/internal/eval"
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

// jsonReport is the -json output shape. Category keys use the literature's
// names ("1-1", "1-N", "N-1", "N-N", "unknown").
type jsonReport struct {
	Model    string               `json:"model"`
	Dim      int                  `json:"dim"`
	Dataset  string               `json:"dataset"`
	Rank     eval.RankResult      `json:"rank"`
	Detailed jsonDetailed         `json:"detailed"`
	TCA      eval.TCAResult       `json:"tca"`
	AUC      float64              `json:"auc"`
	Info     model.CheckpointInfo `json:"checkpoint"`
}

type jsonDetailed struct {
	Overall    eval.SideResult            `json:"overall"`
	ByCategory map[string]eval.SideResult `json:"by_category"`
}

func main() {
	var (
		dataDir  = flag.String("data", "", "OpenKE-layout dataset directory")
		preset   = flag.String("dataset", "", "synthetic preset instead of -data: fb15k-mini, fb250k-mini")
		ckpt     = flag.String("model", "", "checkpoint file written by kgetrain -save (required)")
		sample   = flag.Int("sample", 0, "subsample the test split for ranking (0 = all)")
		seed     = flag.Uint64("seed", 1, "random seed (dataset generation and corruption)")
		asJSON   = flag.Bool("json", false, "emit one machine-readable JSON object instead of the text table")
		detailed = flag.Bool("detailed", false, "also print the per-side / per-category breakdown (implied by -json)")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *ckpt == "" {
		fail(fmt.Errorf("kgeeval: -model is required"))
	}
	// Header-only pass: validates the CRC and yields the shape, so a
	// model/dataset mismatch fails before the weight matrices are read.
	info, err := model.ReadCheckpointInfo(*ckpt)
	if err != nil {
		fail(err)
	}
	var d *kg.Dataset
	switch {
	case *dataDir != "":
		d, err = kg.LoadDir(*dataDir)
	case *preset == "fb15k-mini":
		d = kg.Generate(kg.FB15KMini(*seed))
	case *preset == "fb250k-mini":
		d = kg.Generate(kg.FB250KMini(*seed))
	default:
		err = fmt.Errorf("kgeeval: pass -data <dir> or -dataset <preset>")
	}
	if err != nil {
		fail(err)
	}
	if info.Entities != d.NumEntities || info.Relations != d.NumRelations {
		fail(fmt.Errorf("kgeeval: checkpoint shape (%d entities, %d relations) does not match dataset (%d, %d)",
			info.Entities, info.Relations, d.NumEntities, d.NumRelations))
	}
	m, p, err := model.LoadCheckpoint(*ckpt)
	if err != nil {
		fail(err)
	}
	filter := kg.NewFilterIndex(d)
	rng := xrand.New(*seed)
	lp := eval.LinkPrediction(m, p, d, filter, *sample, rng)
	tc := eval.TripleClassification(m, p, d, filter, rng)
	auc := eval.AUC(m, p, d, filter, rng)

	var det eval.DetailedResult
	if *asJSON || *detailed {
		det = eval.DetailedLinkPrediction(m, p, d, filter, *sample, xrand.New(*seed))
	}

	if *asJSON {
		rep := jsonReport{
			Model:   m.Name(),
			Dim:     m.Dim(),
			Dataset: d.Name,
			Rank:    lp,
			TCA:     tc,
			AUC:     auc,
			Info:    info,
			Detailed: jsonDetailed{
				Overall:    det.Overall,
				ByCategory: map[string]eval.SideResult{},
			},
		}
		for cat, r := range det.ByCategory {
			rep.Detailed.ByCategory[cat.String()] = r
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		return
	}

	fmt.Printf("model %s (dim %d) on %s\n", m.Name(), m.Dim(), d.Name)
	fmt.Printf("test triples ranked   %d\n", lp.Triples)
	fmt.Printf("raw MRR               %.4f\n", lp.MRR)
	fmt.Printf("filtered MRR          %.4f\n", lp.FilteredMRR)
	fmt.Printf("Hits@1 / @3 / @10     %.3f / %.3f / %.3f\n", lp.Hits1, lp.Hits3, lp.Hits10)
	fmt.Printf("filtered mean rank    %.1f\n", lp.MR)
	fmt.Printf("TCA                   %.1f%%\n", tc.Accuracy)
	fmt.Printf("ROC-AUC               %.3f\n", auc)
	if *detailed {
		fmt.Printf("head/tail MRR         %.4f / %.4f\n", det.Overall.HeadMRR, det.Overall.TailMRR)
		for _, cat := range []eval.RelationCategory{eval.Cat1To1, eval.Cat1ToN, eval.CatNTo1, eval.CatNToN} {
			if r, ok := det.ByCategory[cat]; ok {
				fmt.Printf("  %-4s (%d triples)    %.4f / %.4f\n", cat, r.Triples, r.HeadMRR, r.TailMRR)
			}
		}
	}
}
