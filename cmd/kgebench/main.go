// Command kgebench regenerates the paper's tables and figures.
//
// Usage:
//
//	kgebench -list                 # show available experiments
//	kgebench -exp table1          # regenerate one artifact
//	kgebench -exp all             # regenerate everything
//	kgebench -exp fig9 -quick     # reduced datasets/epochs for a fast pass
//
// Output is aligned text: tables mirror the paper's table columns, figures
// are printed as one column per curve.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"kgedist/internal/experiments"
	"kgedist/internal/metrics"
	"kgedist/internal/svgplot"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		quick   = flag.Bool("quick", false, "shrink datasets and epoch budgets")
		seed    = flag.Uint64("seed", 1, "random seed for datasets and training")
		svgDir  = flag.String("svg", "", "also render every figure panel as SVG into this directory")
		csvDir  = flag.String("csv", "", "also write every table as CSV into this directory")
		repeats = flag.Int("repeats", 1, "average every run over this many seeds (the paper used 5)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-9s %s\n            paper: %s\n", e.ID, e.Title, e.Paper)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed, Repeats: *repeats}
	var targets []experiments.Experiment
	if *exp == "all" {
		targets = experiments.All()
	} else {
		e, err := experiments.Get(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		targets = []experiments.Experiment{e}
	}
	for _, e := range targets {
		start := time.Now()
		report, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		report.Render(os.Stdout)
		if *svgDir != "" {
			if err := writeSVGs(report, *svgDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *csvDir != "" {
			if err := writeCSVs(report, *csvDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("\n(%s regenerated in %.1fs wall time)\n\n", e.ID, time.Since(start).Seconds())
	}
}

func writeSVGs(r *metrics.Report, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, fig := range r.Figures {
		path := filepath.Join(dir, fmt.Sprintf("%s-panel%d.svg", r.ID, i+1))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := svgplot.Render(fig, f); err != nil {
			_ = f.Close()
			return fmt.Errorf("rendering %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("(svg written to %s)\n", path)
	}
	return nil
}

func writeCSVs(r *metrics.Report, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tb := range r.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s-table%d.csv", r.ID, i+1))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		tb.RenderCSV(f)
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("(csv written to %s)\n", path)
	}
	return nil
}
