module kgedist

go 1.24
