module kgedist

go 1.24.0
