// Package kgedist's top-level benchmarks regenerate every table and figure
// of the paper in quick mode (one full experiment per benchmark iteration)
// plus ablation benches for the design choices called out in DESIGN.md §5.
//
// Full-scale regeneration is `go run ./cmd/kgebench -exp all`; these benches
// exercise the identical code paths on reduced datasets so `go test
// -bench=.` finishes in minutes.
package kgedist

import (
	"testing"

	"kgedist/internal/core"
	"kgedist/internal/experiments"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
	"kgedist/internal/xrand"
)

// benchExperiment runs one registered experiment end to end per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		experiments.ResetCaches()
		if _, err := e.Run(experiments.Options{Quick: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkFig1(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkHeadline(b *testing.B) { benchExperiment(b, "headline") }

// ---- Ablation benches (DESIGN.md §5) ---------------------------------------

func ablationDataset() *kg.Dataset {
	return kg.Generate(kg.GenConfig{
		Name: "ablation", Entities: 800, Relations: 80, Triples: 6000, Seed: 2,
	})
}

func ablationConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Dim = 8
	cfg.BaseLR = 0.02
	cfg.BatchSize = 500
	cfg.MaxEpochs = 6
	cfg.StopPatience = 6
	cfg.ValSample = 200
	cfg.TestSample = 30
	cfg.Comm = core.CommAllGather
	return cfg
}

// BenchmarkQuantVariants compares training cost across the 1-bit scale
// variants the paper evaluated before choosing max.
func BenchmarkQuantVariants(b *testing.B) {
	d := ablationDataset()
	for _, s := range []grad.Scheme{
		grad.OneBitMax, grad.OneBitAvg, grad.OneBitPosMax,
		grad.OneBitNegMax, grad.OneBitPosAvg, grad.OneBitNegAvg,
	} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Quant = s
				if _, err := core.Train(cfg, d, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkErrorFeedback measures the cost of the residual extension.
func BenchmarkErrorFeedback(b *testing.B) {
	d := ablationDataset()
	for _, ef := range []bool{false, true} {
		name := "off"
		if ef {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Quant = grad.OneBitMax
				cfg.ErrorFeedback = ef
				if _, err := core.Train(cfg, d, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDRSProbePeriod sweeps the dynamic strategy's probe period k.
func BenchmarkDRSProbePeriod(b *testing.B) {
	d := ablationDataset()
	for _, k := range []int{2, 5, 10} {
		b.Run(map[int]string{2: "k2", 5: "k5", 10: "k10"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Comm = core.CommDynamic
				cfg.ProbeEvery = k
				if _, err := core.Train(cfg, d, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRelationPartitionAlgo measures the §4.4 partitioner itself
// (sort + prefix sum + binary-searched splits).
func BenchmarkRelationPartitionAlgo(b *testing.B) {
	rng := xrand.New(1)
	triples := make([]kg.Triple, 200000)
	for i := range triples {
		triples[i] = kg.Triple{
			H: int32(rng.Intn(10000)),
			R: int32(rng.Intn(2000)),
			T: int32(rng.Intn(10000)),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kg.RelationPartition(triples, 2000, 16)
	}
}

// BenchmarkUniformVsRelationPartitionTraining compares end-to-end epoch
// throughput of the two data distributions.
func BenchmarkUniformVsRelationPartitionTraining(b *testing.B) {
	d := ablationDataset()
	for _, rp := range []bool{false, true} {
		name := "uniform"
		if rp {
			name = "relation"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.RelationPartition = rp
				if _, err := core.Train(cfg, d, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelectionModes compares training cost across all gradient-row
// selection strategies (the paper's Bernoulli vs the related-work
// baselines).
func BenchmarkSelectionModes(b *testing.B) {
	d := ablationDataset()
	modes := []grad.SelectMode{
		grad.SelectAll, grad.SelectAvgThreshold, grad.SelectAvgTenthThreshold,
		grad.SelectBernoulli, grad.SelectTopQuarter, grad.SelectUnbiased,
	}
	for _, mode := range modes {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Select = mode
				if _, err := core.Train(cfg, d, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartitionPrefixVsLPT compares the two relation partitioners
// end to end.
func BenchmarkPartitionPrefixVsLPT(b *testing.B) {
	d := ablationDataset()
	for _, algo := range []string{"prefix", "lpt"} {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.RelationPartition = true
				cfg.PartitionAlgo = algo
				if _, err := core.Train(cfg, d, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLossObjectives compares the logistic and margin objectives.
func BenchmarkLossObjectives(b *testing.B) {
	d := ablationDataset()
	for _, loss := range []string{"logistic", "margin"} {
		b.Run(loss, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.LossName = loss
				cfg.Margin = 1
				if _, err := core.Train(cfg, d, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSyncEvery sweeps the local-SGD averaging period.
func BenchmarkSyncEvery(b *testing.B) {
	d := ablationDataset()
	for _, k := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "every-batch", 4: "every-4", 8: "every-8"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Comm = core.CommAllReduce
				cfg.SyncEvery = k
				if _, err := core.Train(cfg, d, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
